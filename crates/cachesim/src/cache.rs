//! A single set-associative cache with true-LRU replacement.
//!
//! Storage is flat: two parallel arrays (`addrs`, `meta`) of
//! `sets * ways` slots. `meta` packs a monotonically increasing
//! recency stamp with the dirty/prefetched flags
//! (`stamp << 2 | dirty << 1 | prefetched`); a slot is empty iff its
//! meta word is zero (stamps start at 1). Because stamps are unique and
//! strictly increasing, comparing meta words compares recency, so the
//! LRU victim of a set is simply the occupied slot with the smallest
//! meta — and an empty slot (meta 0) always wins, which is exactly the
//! "insert while not full" rule. This layout keeps a set's ways in one
//! cache-line-friendly span and replaces the old remove+push Vec
//! shuffle with a single word write per access.

/// Result of inserting a line: what fell out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// No line was displaced.
    None,
    /// A clean line was displaced.
    Clean(u64),
    /// A dirty line was displaced and must be written back.
    Dirty(u64),
}

const DIRTY: u64 = 0b10;
const PREFETCHED: u64 = 0b01;
const FLAG_BITS: u64 = 0b11;

/// One level of cache, indexed by line address.
///
/// Addresses are *line numbers* (byte address divided by the line size);
/// the hierarchy performs the shift once so all levels share it.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Line address per slot; meaningless where `meta` is zero.
    addrs: Vec<u64>,
    /// `stamp << 2 | dirty << 1 | prefetched`; zero = empty slot.
    meta: Vec<u64>,
    nsets: usize,
    ways: usize,
    stamp: u64,
    /// `nsets - 1` when the set count is a power of two, else `u64::MAX`
    /// (the replay hot loop indexes sets on every access, so the modulo
    /// is strength-reduced to a mask wherever the geometry allows).
    set_mask: u64,
    /// `floor(2^64 / nsets) + 1` — Lemire's direct-remainder magic for
    /// non-power-of-two set counts (e.g. the 5930k's 12288-set L3).
    set_magic: u64,
}

/// Outcome of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether the hit line had been brought in by a prefetch and this is
    /// its first demand use.
    pub first_prefetch_use: bool,
}

/// Outcome of a fused lookup-or-victim pass (see
/// [`Cache::access_with_victim`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessOutcome {
    /// The line was present; recency/dirtiness updated as in
    /// [`Cache::access`].
    Hit {
        /// First demand use of a prefetched line.
        first_prefetch_use: bool,
    },
    /// The line was absent; `victim` is the slot an insertion of this
    /// line would take (the LRU of its set), valid until the next
    /// operation on this cache.
    Miss {
        /// Flat slot index of the set's LRU entry.
        victim: u32,
    },
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be nonzero");
        Cache {
            addrs: vec![0; sets * ways],
            meta: vec![0; sets * ways],
            nsets: sets,
            ways,
            stamp: 0,
            set_mask: if sets.is_power_of_two() { sets as u64 - 1 } else { u64::MAX },
            // ceil(2^64 / sets); wraps to 0 for sets == 1, where the
            // power-of-two mask path is taken instead.
            set_magic: (u64::MAX / sets as u64).wrapping_add(1),
        }
    }

    /// `line % nsets` without a hardware division: a mask for
    /// power-of-two set counts, Lemire's direct remainder (exact for
    /// operands below 2^32) otherwise, falling back to `%` only for
    /// addresses wrapped past 2^32 by the cycle skipper's translation.
    #[inline]
    fn set_index(&self, line: u64) -> usize {
        if self.set_mask != u64::MAX {
            (line & self.set_mask) as usize
        } else if line < 1 << 32 {
            let frac = self.set_magic.wrapping_mul(line);
            ((u128::from(frac) * self.nsets as u128) >> 64) as usize
        } else {
            (line % self.nsets as u64) as usize
        }
    }

    #[inline]
    fn set_base(&self, line: u64) -> usize {
        self.set_index(line) * self.ways
    }

    #[inline]
    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    #[inline]
    fn find(&self, base: usize, line: u64) -> Option<usize> {
        let metas = &self.meta[base..base + self.ways];
        let addrs = &self.addrs[base..base + self.ways];
        metas.iter().zip(addrs).position(|(&m, &a)| m != 0 && a == line).map(|i| base + i)
    }

    /// Demand access to `line`. On a hit the line becomes most-recent and
    /// (for writes) dirty. Returns the lookup outcome; on a miss the
    /// caller is responsible for filling via [`Cache::fill`].
    pub fn access(&mut self, line: u64, write: bool) -> Lookup {
        let base = self.set_base(line);
        if let Some(i) = self.find(base, line) {
            let first_prefetch_use = self.meta[i] & PREFETCHED != 0;
            let dirty = (self.meta[i] & DIRTY) | if write { DIRTY } else { 0 };
            self.meta[i] = (self.next_stamp() << 2) | dirty;
            Lookup { hit: true, first_prefetch_use }
        } else {
            Lookup { hit: false, first_prefetch_use: false }
        }
    }

    /// Whether `line` is present, without touching LRU state.
    pub fn probe(&self, line: u64) -> bool {
        self.find(self.set_base(line), line).is_some()
    }

    /// [`Cache::access`] fused with victim preselection: one pass over
    /// the set serves both the lookup and, on a miss, the LRU victim
    /// scan that a subsequent fill would repeat. The returned victim
    /// slot stays valid as long as no other operation touches this
    /// cache; pair with [`Cache::insert_at`].
    pub(crate) fn access_with_victim(&mut self, line: u64, write: bool) -> AccessOutcome {
        let base = self.set_base(line);
        let metas = &self.meta[base..base + self.ways];
        let addrs = &self.addrs[base..base + self.ways];
        // One bounds-check-free pass: stop at the hit way, tracking the
        // first-minimum meta (empty slots are 0, older stamps are
        // smaller) over the prefix as the prospective victim. On a miss
        // the prefix is the whole set, matching the scan a fill would do.
        let mut victim = 0usize;
        let mut vmeta = u64::MAX;
        let mut hit = usize::MAX;
        for (i, (&m, &a)) in metas.iter().zip(addrs).enumerate() {
            if m != 0 && a == line {
                hit = i;
                break;
            }
            if m < vmeta {
                vmeta = m;
                victim = i;
            }
        }
        if hit != usize::MAX {
            let m = self.meta[base + hit];
            let first_prefetch_use = m & PREFETCHED != 0;
            let dirty = (m & DIRTY) | if write { DIRTY } else { 0 };
            self.meta[base + hit] = (self.next_stamp() << 2) | dirty;
            return AccessOutcome::Hit { first_prefetch_use };
        }
        AccessOutcome::Miss { victim: (base + victim) as u32 }
    }

    /// Inserts `line` into `slot` (a victim returned by
    /// [`Cache::access_with_victim`] with no intervening operation on
    /// this cache), evicting the slot's current occupant. Identical to
    /// the insertion tail of [`Cache::fill`] for an absent line.
    pub(crate) fn insert_at(
        &mut self,
        slot: u32,
        line: u64,
        dirty: bool,
        prefetched: bool,
    ) -> Eviction {
        let slot = slot as usize;
        let m = self.meta[slot];
        let evicted = if m == 0 {
            Eviction::None
        } else if m & DIRTY != 0 {
            Eviction::Dirty(self.addrs[slot])
        } else {
            Eviction::Clean(self.addrs[slot])
        };
        let flags = if dirty { DIRTY } else { 0 } | if prefetched { PREFETCHED } else { 0 };
        self.addrs[slot] = line;
        self.meta[slot] = (self.next_stamp() << 2) | flags;
        evicted
    }

    /// Inserts `line` as most-recently-used, evicting the LRU line of its
    /// set when full. `prefetched` marks prefetch fills; `dirty` marks
    /// store-allocated or written-back lines.
    pub fn fill(&mut self, line: u64, dirty: bool, prefetched: bool) -> Eviction {
        let base = self.set_base(line);
        if let Some(i) = self.find(base, line) {
            // Refill of a present line (e.g. writeback into a lower level):
            // merge dirtiness, refresh recency, keep the prefetched flag.
            let flags = (self.meta[i] & FLAG_BITS) | if dirty { DIRTY } else { 0 };
            self.meta[i] = (self.next_stamp() << 2) | flags;
            return Eviction::None;
        }
        self.insert(base, line, dirty, prefetched)
    }

    /// [`Cache::fill`] for a line the caller has just proven absent (a
    /// missed lookup or failed probe with no intervening operation on
    /// this cache): skips the presence re-scan and goes straight to
    /// victim selection.
    pub fn fill_absent(&mut self, line: u64, dirty: bool, prefetched: bool) -> Eviction {
        let base = self.set_base(line);
        debug_assert!(self.find(base, line).is_none(), "fill_absent on a resident line");
        self.insert(base, line, dirty, prefetched)
    }

    fn insert(&mut self, base: usize, line: u64, dirty: bool, prefetched: bool) -> Eviction {
        // Victim = smallest meta in the set: an empty slot (meta 0) if any,
        // else the occupied slot with the oldest stamp.
        let metas = &self.meta[base..base + self.ways];
        let mut victim = base;
        let mut vmeta = u64::MAX;
        for (i, &m) in metas.iter().enumerate() {
            if m < vmeta {
                vmeta = m;
                victim = base + i;
            }
        }
        let evicted = if self.meta[victim] == 0 {
            Eviction::None
        } else if self.meta[victim] & DIRTY != 0 {
            Eviction::Dirty(self.addrs[victim])
        } else {
            Eviction::Clean(self.addrs[victim])
        };
        let flags = if dirty { DIRTY } else { 0 } | if prefetched { PREFETCHED } else { 0 };
        self.addrs[victim] = line;
        self.meta[victim] = (self.next_stamp() << 2) | flags;
        evicted
    }

    /// Marks a present line dirty (writeback absorption) without changing
    /// recency. Returns whether the line was present.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let base = self.set_base(line);
        if let Some(i) = self.find(base, line) {
            self.meta[i] |= DIRTY;
            true
        } else {
            false
        }
    }

    /// Fused form of [`Cache::mark_dirty`] for the writeback cascade:
    /// marks a present line dirty in place (returning `None`), or returns
    /// the LRU victim slot of the line's set so the caller can insert via
    /// [`Cache::insert_at`] without re-scanning the set.
    pub(crate) fn mark_dirty_with_victim(&mut self, line: u64) -> Option<u32> {
        let base = self.set_base(line);
        let metas = &self.meta[base..base + self.ways];
        let addrs = &self.addrs[base..base + self.ways];
        let mut victim = 0usize;
        let mut vmeta = u64::MAX;
        let mut hit = usize::MAX;
        for (i, (&m, &a)) in metas.iter().zip(addrs).enumerate() {
            if m != 0 && a == line {
                hit = i;
                break;
            }
            if m < vmeta {
                vmeta = m;
                victim = i;
            }
        }
        if hit != usize::MAX {
            self.meta[base + hit] |= DIRTY;
            return None;
        }
        Some((base + victim) as u32)
    }

    /// Number of lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|&&m| m != 0).count()
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.nsets * self.ways
    }

    /// Drops every resident line.
    pub fn clear(&mut self) {
        self.meta.fill(0);
        self.stamp = 0;
    }

    /// Number of sets (crate-internal: set-phase arithmetic and state
    /// translation in the run engine).
    pub(crate) fn set_count(&self) -> usize {
        self.nsets
    }

    /// Appends this cache's resident lines of set `set`, oldest first, as
    /// `(addr, flags)` pairs — recency *order* without the absolute
    /// stamps, which drift between otherwise-identical steady-state
    /// iterations.
    pub(crate) fn set_entries_by_recency(&self, set: usize, out: &mut Vec<(u64, u64)>) {
        let base = set * self.ways;
        let from = out.len();
        for i in base..base + self.ways {
            if self.meta[i] != 0 {
                out.push((self.meta[i], self.addrs[i]));
            }
        }
        out[from..].sort_unstable();
        for e in &mut out[from..] {
            *e = (e.1, e.0 & FLAG_BITS);
        }
    }

    /// Translates the whole cache image by `lines` line addresses: every
    /// resident address shifts by `lines`, and set contents rotate
    /// accordingly (set index is `addr % nsets`). Recency stamps are
    /// preserved per line. Used by the steady-state cycle skipper to
    /// advance the cache image one period at a time in O(capacity).
    pub(crate) fn translate(&mut self, lines: i64) {
        let n = self.nsets as i64;
        let shift = lines.rem_euclid(n) as usize;
        for i in 0..self.addrs.len() {
            if self.meta[i] != 0 {
                self.addrs[i] = self.addrs[i].wrapping_add_signed(lines);
            }
        }
        if shift != 0 {
            // Rotate set chunks: the lines of old set s now live in set
            // (s + shift) % nsets.
            self.addrs.rotate_right(shift * self.ways);
            self.meta.rotate_right(shift * self.ways);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(4, 2);
        assert!(!c.access(10, false).hit);
        c.fill(10, false, false);
        assert!(c.access(10, false).hit);
        assert!(c.probe(10));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(1, 2);
        c.fill(0, false, false);
        c.fill(1, false, false);
        // touch 0 so 1 becomes LRU
        assert!(c.access(0, false).hit);
        let ev = c.fill(2, false, false);
        assert_eq!(ev, Eviction::Clean(1));
        assert!(c.probe(0));
        assert!(!c.probe(1));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = Cache::new(1, 1);
        c.fill(0, true, false);
        assert_eq!(c.fill(1, false, false), Eviction::Dirty(0));
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = Cache::new(1, 1);
        c.fill(0, false, false);
        c.access(0, true);
        assert_eq!(c.fill(1, false, false), Eviction::Dirty(0));
    }

    #[test]
    fn prefetched_flag_cleared_on_first_use() {
        let mut c = Cache::new(1, 2);
        c.fill(7, false, true);
        let l = c.access(7, false);
        assert!(l.hit && l.first_prefetch_use);
        let l = c.access(7, false);
        assert!(l.hit && !l.first_prefetch_use);
    }

    #[test]
    fn refill_merges_dirty_without_duplicating() {
        let mut c = Cache::new(1, 2);
        c.fill(3, false, false);
        assert_eq!(c.fill(3, true, false), Eviction::None);
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.fill(4, false, false), Eviction::None);
        assert_eq!(c.fill(5, false, false), Eviction::Dirty(3));
    }

    #[test]
    fn mark_dirty_only_if_present() {
        let mut c = Cache::new(2, 1);
        c.fill(0, false, false);
        assert!(c.mark_dirty(0));
        assert!(!c.mark_dirty(1));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = Cache::new(2, 1);
        c.fill(0, false, false); // set 0
        c.fill(1, false, false); // set 1
        assert!(c.probe(0));
        assert!(c.probe(1));
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut c = Cache::new(2, 2);
        c.fill(0, false, false);
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_panics() {
        let _ = Cache::new(0, 1);
    }

    #[test]
    fn mark_dirty_does_not_refresh_recency() {
        let mut c = Cache::new(1, 2);
        c.fill(0, false, false);
        c.fill(1, false, false);
        c.mark_dirty(0); // 0 stays LRU
        assert_eq!(c.fill(2, false, false), Eviction::Dirty(0));
    }

    #[test]
    fn translate_shifts_addresses_and_sets() {
        let mut c = Cache::new(4, 2);
        c.fill(1, true, false);
        c.fill(6, false, true);
        c.translate(3);
        assert!(c.probe(4));
        assert!(c.probe(9));
        assert!(!c.probe(1));
        assert_eq!(c.occupancy(), 2);
        // Flags survive the shift.
        assert!(c.access(9, false).first_prefetch_use);
        assert_eq!(c.fill(8, false, false), Eviction::None);
        let mut recency = Vec::new();
        c.set_entries_by_recency(0, &mut recency);
        assert_eq!(recency, vec![(4, DIRTY), (8, 0)]);
    }

    #[test]
    fn set_index_matches_modulo_for_all_geometries() {
        for sets in [1usize, 3, 5, 48, 64, 4096, 12288, 20480] {
            let c = Cache::new(sets, 1);
            let d = sets as u64;
            let mut lines: Vec<u64> = vec![
                0,
                1,
                d - 1,
                d,
                d + 1,
                (1 << 32) - 1,
                1 << 32,
                (1 << 32) + 1,
                u64::MAX - 1,
                u64::MAX,
            ];
            // Pseudo-random probes across the Lemire (< 2^32) range and
            // boundary-adjacent multiples of the divisor.
            for k in 1..4096u64 {
                let r = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                lines.push(r >> 32);
                lines.push((r % (1 << 32) / d) * d + k % 3);
            }
            for line in lines {
                assert_eq!(c.set_index(line), (line % d) as usize, "sets={sets} line={line}");
            }
        }
    }

    #[test]
    fn fill_absent_matches_fill_for_missing_lines() {
        let mut a = Cache::new(4, 2);
        let mut b = Cache::new(4, 2);
        for line in [0u64, 4, 8, 1, 5, 9, 2] {
            assert_eq!(
                a.fill(line, line % 2 == 0, line % 3 == 0),
                b.fill_absent(line, line % 2 == 0, line % 3 == 0)
            );
        }
        for line in 0..12u64 {
            assert_eq!(a.probe(line), b.probe(line), "line {line}");
        }
    }

    #[test]
    fn translate_negative_wraps_sets() {
        let mut c = Cache::new(4, 1);
        c.fill(0, false, false);
        c.translate(-1);
        assert!(c.probe(u64::MAX)); // 0 - 1 wraps; set = MAX % 4 = 3
        assert_eq!(c.occupancy(), 1);
    }
}
