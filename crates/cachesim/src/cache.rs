//! A single set-associative cache with true-LRU replacement.

/// Result of inserting a line: what fell out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// No line was displaced.
    None,
    /// A clean line was displaced.
    Clean(u64),
    /// A dirty line was displaced and must be written back.
    Dirty(u64),
}

#[derive(Debug, Clone, Copy)]
struct Line {
    /// Line-granular address (byte address >> line_bits).
    addr: u64,
    dirty: bool,
    /// Set when the line was filled by a prefetch and not yet demanded.
    prefetched: bool,
}

/// One level of cache, indexed by line address.
///
/// Addresses are *line numbers* (byte address divided by the line size);
/// the hierarchy performs the shift once so all levels share it.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
}

/// Outcome of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether the hit line had been brought in by a prefetch and this is
    /// its first demand use.
    pub first_prefetch_use: bool,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be nonzero");
        Cache { sets: vec![Vec::with_capacity(ways); sets], ways }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// Demand access to `line`. On a hit the line becomes most-recent and
    /// (for writes) dirty. Returns the lookup outcome; on a miss the
    /// caller is responsible for filling via [`Cache::fill`].
    pub fn access(&mut self, line: u64, write: bool) -> Lookup {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|l| l.addr == line) {
            let mut entry = ways.remove(pos);
            let first_prefetch_use = entry.prefetched;
            entry.prefetched = false;
            entry.dirty |= write;
            ways.push(entry);
            Lookup { hit: true, first_prefetch_use }
        } else {
            Lookup { hit: false, first_prefetch_use: false }
        }
    }

    /// Whether `line` is present, without touching LRU state.
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        self.sets[set].iter().any(|l| l.addr == line)
    }

    /// Inserts `line` as most-recently-used, evicting the LRU line of its
    /// set when full. `prefetched` marks prefetch fills; `dirty` marks
    /// store-allocated or written-back lines.
    pub fn fill(&mut self, line: u64, dirty: bool, prefetched: bool) -> Eviction {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|l| l.addr == line) {
            // Refill of a present line (e.g. writeback into a lower level):
            // merge dirtiness, refresh recency.
            let mut entry = ways.remove(pos);
            entry.dirty |= dirty;
            ways.push(entry);
            return Eviction::None;
        }
        let evicted = if ways.len() == self.ways {
            let victim = ways.remove(0);
            if victim.dirty {
                Eviction::Dirty(victim.addr)
            } else {
                Eviction::Clean(victim.addr)
            }
        } else {
            Eviction::None
        };
        ways.push(Line { addr: line, dirty, prefetched });
        evicted
    }

    /// Marks a present line dirty (writeback absorption) without changing
    /// recency. Returns whether the line was present.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.addr == line) {
            l.dirty = true;
            true
        } else {
            false
        }
    }

    /// Number of lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Drops every resident line.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(4, 2);
        assert!(!c.access(10, false).hit);
        c.fill(10, false, false);
        assert!(c.access(10, false).hit);
        assert!(c.probe(10));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(1, 2);
        c.fill(0, false, false);
        c.fill(1, false, false);
        // touch 0 so 1 becomes LRU
        assert!(c.access(0, false).hit);
        let ev = c.fill(2, false, false);
        assert_eq!(ev, Eviction::Clean(1));
        assert!(c.probe(0));
        assert!(!c.probe(1));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = Cache::new(1, 1);
        c.fill(0, true, false);
        assert_eq!(c.fill(1, false, false), Eviction::Dirty(0));
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = Cache::new(1, 1);
        c.fill(0, false, false);
        c.access(0, true);
        assert_eq!(c.fill(1, false, false), Eviction::Dirty(0));
    }

    #[test]
    fn prefetched_flag_cleared_on_first_use() {
        let mut c = Cache::new(1, 2);
        c.fill(7, false, true);
        let l = c.access(7, false);
        assert!(l.hit && l.first_prefetch_use);
        let l = c.access(7, false);
        assert!(l.hit && !l.first_prefetch_use);
    }

    #[test]
    fn refill_merges_dirty_without_duplicating() {
        let mut c = Cache::new(1, 2);
        c.fill(3, false, false);
        assert_eq!(c.fill(3, true, false), Eviction::None);
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.fill(4, false, false), Eviction::None);
        assert_eq!(c.fill(5, false, false), Eviction::Dirty(3));
    }

    #[test]
    fn mark_dirty_only_if_present() {
        let mut c = Cache::new(2, 1);
        c.fill(0, false, false);
        assert!(c.mark_dirty(0));
        assert!(!c.mark_dirty(1));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = Cache::new(2, 1);
        c.fill(0, false, false); // set 0
        c.fill(1, false, false); // set 1
        assert!(c.probe(0));
        assert!(c.probe(1));
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut c = Cache::new(2, 2);
        c.fill(0, false, false);
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_panics() {
        let _ = Cache::new(0, 1);
    }
}
