//! [`Codec`] implementations for simulator statistics, so simulation
//! reports can live in the persistent artifact store. Fields encode in
//! declaration order; changing one requires bumping the simulate pass's
//! version.

use crate::hierarchy::ReplayStats;
use crate::stats::{HierarchyStats, LevelStats};
use palo_codec::{ByteReader, ByteWriter, Codec, DecodeError};

impl Codec for LevelStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_u64(self.demand_hits);
        w.write_u64(self.demand_misses);
        w.write_u64(self.prefetch_hits);
        w.write_u64(self.prefetch_fills);
        w.write_u64(self.dirty_evictions);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(LevelStats {
            demand_hits: r.read_u64()?,
            demand_misses: r.read_u64()?,
            prefetch_hits: r.read_u64()?,
            prefetch_fills: r.read_u64()?,
            dirty_evictions: r.read_u64()?,
        })
    }
}

impl Codec for HierarchyStats {
    fn encode(&self, w: &mut ByteWriter) {
        self.levels.encode(w);
        w.write_u64(self.mem_demand_fills);
        w.write_u64(self.mem_prefetch_fills);
        w.write_u64(self.mem_writebacks);
        w.write_u64(self.nt_store_lines);
        w.write_u64(self.total_accesses);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(HierarchyStats {
            levels: Vec::decode(r)?,
            mem_demand_fills: r.read_u64()?,
            mem_prefetch_fills: r.read_u64()?,
            mem_writebacks: r.read_u64()?,
            nt_store_lines: r.read_u64()?,
            total_accesses: r.read_u64()?,
        })
    }
}

impl Codec for ReplayStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_u64(self.runs);
        w.write_u64(self.run_lines);
        w.write_u64(self.cycles_skipped);
        w.write_u64(self.lines_skipped);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(ReplayStats {
            runs: r.read_u64()?,
            run_lines: r.read_u64()?,
            cycles_skipped: r.read_u64()?,
            lines_skipped: r.read_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip() {
        let stats = HierarchyStats {
            levels: vec![
                LevelStats {
                    demand_hits: 1,
                    demand_misses: 2,
                    prefetch_hits: 3,
                    prefetch_fills: 4,
                    dirty_evictions: 5,
                },
                LevelStats::default(),
            ],
            mem_demand_fills: 6,
            mem_prefetch_fills: 7,
            mem_writebacks: 8,
            nt_store_lines: 9,
            total_accesses: 10,
        };
        let bytes = stats.encode_to_vec();
        assert_eq!(HierarchyStats::decode_from_slice(&bytes).unwrap(), stats);

        let replay =
            ReplayStats { runs: 11, run_lines: 12, cycles_skipped: 13, lines_skipped: 14 };
        let bytes = replay.encode_to_vec();
        assert_eq!(ReplayStats::decode_from_slice(&bytes).unwrap(), replay);
    }
}
