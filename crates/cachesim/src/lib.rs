//! Trace-driven multi-level cache simulator with hardware prefetchers.
//!
//! This crate is the hardware substitute of the reproduction: the paper
//! measures wall-clock time on Intel and ARM machines whose *hardware
//! prefetching units* interact with the loop transformations under study.
//! Here those machines are replaced by a deterministic simulator:
//!
//! * set-associative, write-back, (configurable) write-allocate caches
//!   with true-LRU replacement, built directly from
//!   [`palo_arch::CacheLevel`] descriptions;
//! * a **pluggable per-level prefetcher zoo** behind the [`Prefetcher`]
//!   trait: an L1 next-line streamer (the paper's "fetch the next cache
//!   line after every reference"), an adjacent-pair (buddy-line) unit, and
//!   a constant-stride stream-table family with a prefetch degree
//!   (`L2pref`), a maximum run-ahead distance (`L2maxpref`, 20 lines on
//!   Intel), a confidence threshold, and an optional unit-stride-only
//!   (stream) restriction;
//! * **non-temporal stores** that bypass allocation entirely and cost one
//!   bandwidth-side line transfer (write-combining).
//!
//! The simulator is line-granular: callers feed it demand accesses via
//! [`Hierarchy::access`] or the batched [`Hierarchy::access_range`], and
//! read per-level [`LevelStats`] plus a latency-weighted cycle estimate
//! back out.
//!
//! # Examples
//!
//! ```
//! use palo_arch::presets;
//! use palo_cachesim::{AccessKind, Hierarchy};
//!
//! let arch = presets::intel_i7_6700();
//! let mut h = Hierarchy::from_architecture(&arch);
//! // Stream 1 MiB: the next-line prefetcher hides most line misses.
//! for addr in (0..1 << 20).step_by(4) {
//!     h.access(addr, AccessKind::Load);
//! }
//! let l1 = &h.stats().levels[0];
//! assert!(l1.prefetch_hits > 5_000);
//! ```

mod cache;
mod codec;
mod error;
mod hierarchy;
mod prefetch;
mod sink;
mod stats;
mod strategy;

pub use cache::{Cache, Eviction};
pub use error::SimConfigError;
pub use hierarchy::{AccessKind, AccessRun, Hierarchy, ReplayStats, ServedBy};
pub use prefetch::StridePrefetcher;
pub use sink::{CountingSink, CycleSnapshot, LineSink};
pub use stats::{HierarchyStats, LevelStats};
pub use strategy::{
    AdjacentPairPrefetcher, InertPrefetcher, NextLinePrefetcher, PrefetchSnap, Prefetcher,
};
