//! Constant-stride stream prefetcher (the L2 unit of the paper).

/// One tracked access stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stream {
    /// Last demand line observed for this stream.
    pub(crate) last: u64,
    /// Detected stride in lines (may be negative).
    pub(crate) stride: i64,
    /// Consecutive confirmations of `stride`.
    pub(crate) confidence: u8,
    /// Furthest line already prefetched for this stream.
    pub(crate) frontier: u64,
    /// LRU stamp.
    pub(crate) stamp: u64,
}

/// A stream-table constant-stride prefetcher.
///
/// Mirrors the paper's model of the Intel L2 prefetcher: it detects
/// constant strides (unit or not — "modern hardware prefetching units are
/// also capable of detecting non-unit strides"), issues `degree`
/// (`L2pref`) prefetches per triggering access, and never runs more than
/// `max_distance` (`L2maxpref`) lines ahead of the demand stream.
///
/// Two knobs generalise the table into the rest of the stride family:
/// `min_confidence` (the confirmations a stream needs before issuing —
/// the paper's unit is hard-wired to 2) parameterises the
/// *confident-stride* strategy, and `unit_only` restricts issuing to
/// unit-stride streams, which is the *stream-with-confirmation* engine
/// styled after AMD L2 units. All knob settings share the identical
/// table mechanics, so the run engine's steady-state contract holds for
/// every member of the family.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    streams: Vec<Stream>,
    capacity: usize,
    degree: usize,
    max_distance: u64,
    clock: u64,
    /// Window (in lines) within which a new address is matched to an
    /// existing stream.
    match_window: i64,
    /// Confirmations a stream needs before any prefetch issues.
    min_confidence: u8,
    /// When set, only unit-stride (±1 line) streams ever issue.
    unit_only: bool,
    /// Streams allocated since construction/reset. The run engine's
    /// steady-state detector requires a creation-free cycle: allocation
    /// is the only event that reads absolute stamps (LRU victim choice)
    /// and permutes table indices (`swap_remove`).
    creations: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with the given degree (`L2pref`) and maximum
    /// run-ahead distance in lines (`L2maxpref`).
    pub fn new(degree: usize, max_distance: usize) -> Self {
        StridePrefetcher {
            streams: Vec::new(),
            capacity: 32,
            degree,
            max_distance: max_distance as u64,
            clock: 0,
            match_window: 64,
            min_confidence: 2,
            unit_only: false,
            creations: 0,
        }
    }

    /// [`StridePrefetcher::new`] with an explicit confirmation threshold
    /// (the `ConfidentStride` strategy; `new` fixes it at 2).
    pub fn with_confidence(degree: usize, max_distance: usize, min_confidence: u8) -> Self {
        let mut p = Self::new(degree, max_distance);
        p.min_confidence = min_confidence;
        p
    }

    /// A stream-with-confirmation engine (the `Stream` strategy): only
    /// unit-stride streams issue, after `confirm` confirmations.
    pub fn stream(degree: usize, max_distance: usize, confirm: u8) -> Self {
        let mut p = Self::with_confidence(degree, max_distance, confirm);
        p.unit_only = true;
        p
    }

    /// Whether a stream with this stride may issue under the unit-stride
    /// restriction.
    #[inline]
    fn issues_for(&self, stride: i64) -> bool {
        !self.unit_only || stride.unsigned_abs() == 1
    }

    /// Observes a demand access to `line` and returns the lines to
    /// prefetch (empty until a stream's stride is confirmed).
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(line, &mut out);
        out
    }

    /// Allocation-free [`StridePrefetcher::observe`]: appends prefetch
    /// lines to `out` and returns the index of the stream the access was
    /// matched to (`None` when a new stream was allocated or prefetching
    /// is disabled).
    pub(crate) fn observe_into(&mut self, line: u64, out: &mut Vec<u64>) -> Option<usize> {
        self.clock += 1;
        if self.degree == 0 {
            return None;
        }

        // Find the stream this access extends: best = the one whose
        // predicted next line is exactly `line`, else the nearest one
        // within the match window.
        let mut best: Option<usize> = None;
        let mut best_score = i64::MAX;
        for (i, s) in self.streams.iter().enumerate() {
            let predicted = s.last.wrapping_add(s.stride as u64);
            if predicted == line && s.stride != 0 {
                best = Some(i);
                break;
            }
            let d = (line as i64).wrapping_sub(s.last as i64);
            if d != 0 && d.abs() <= self.match_window && d.abs() < best_score {
                best = Some(i);
                best_score = d.abs();
            }
        }

        match best {
            Some(i) => {
                let delta = (line as i64).wrapping_sub(self.streams[i].last as i64);
                let s = &mut self.streams[i];
                if delta == 0 {
                    s.stamp = self.clock;
                    return Some(i);
                }
                if delta == s.stride {
                    s.confidence = s.confidence.saturating_add(1);
                } else {
                    s.stride = delta;
                    s.confidence = 1;
                    s.frontier = line;
                }
                s.last = line;
                s.stamp = self.clock;
                let (confidence, stride) = (s.confidence, s.stride);
                if confidence >= self.min_confidence && self.issues_for(stride) {
                    let s = &mut self.streams[i];
                    Self::run_ahead(s, line, self.degree, self.max_distance, out);
                }
                Some(i)
            }
            None => {
                if self.streams.len() == self.capacity {
                    let oldest = self
                        .streams
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.stamp)
                        .map(|(i, _)| i)
                        .expect("capacity > 0");
                    self.streams.swap_remove(oldest);
                }
                self.creations += 1;
                self.streams.push(Stream {
                    last: line,
                    stride: 0,
                    confidence: 0,
                    frontier: line,
                    stamp: self.clock,
                });
                None
            }
        }
    }

    /// Advances `s`'s frontier up to `degree` prefetches ahead of `line`,
    /// bounded by the run-ahead distance. Exactly the confirmed-stride
    /// tail of [`StridePrefetcher::observe_into`], shared with the
    /// expected-stream fast path.
    fn run_ahead(
        s: &mut Stream,
        line: u64,
        degree: usize,
        max_distance: u64,
        out: &mut Vec<u64>,
    ) {
        let stride = s.stride;
        // The frontier never lags the demand stream.
        if (stride > 0 && s.frontier < line) || (stride < 0 && s.frontier > line) {
            s.frontier = line;
        }
        let limit = max_distance.saturating_mul(stride.unsigned_abs().max(1));
        for _ in 0..degree {
            let next = (s.frontier as i64).wrapping_add(stride) as u64;
            let ahead = (next as i64 - line as i64).unsigned_abs();
            if ahead > limit {
                break;
            }
            s.frontier = next;
            out.push(next);
        }
    }

    /// Whether stream `i` exists and predicts exactly `line` with a
    /// nonzero stride — the precondition for
    /// [`StridePrefetcher::observe_expected`].
    pub(crate) fn expects(&self, i: usize, line: u64) -> bool {
        self.streams
            .get(i)
            .is_some_and(|s| s.stride != 0 && s.last.wrapping_add(s.stride as u64) == line)
    }

    /// Fast-path observe for a line already known (via
    /// [`StridePrefetcher::expects`]) to be the exact predicted successor
    /// of stream `i`: skips the table scan, performing the identical
    /// state transition the scan-based observe would.
    pub(crate) fn observe_expected(&mut self, i: usize, line: u64, out: &mut Vec<u64>) {
        self.clock += 1;
        let s = &mut self.streams[i];
        debug_assert!(s.stride != 0 && s.last.wrapping_add(s.stride as u64) == line);
        s.confidence = s.confidence.saturating_add(1);
        s.last = line;
        s.stamp = self.clock;
        let (confidence, stride) = (s.confidence, s.stride);
        if confidence >= self.min_confidence && self.issues_for(stride) {
            let s = &mut self.streams[i];
            Self::run_ahead(s, line, self.degree, self.max_distance, out);
        }
    }

    /// Ramp-regime view of stream `i` for the run engine's fast feed
    /// paths: `(r, limit, degree)` where `r` is the signed frontier
    /// run-ahead `(frontier - last) * signum(stride)` in lines, `limit`
    /// the run-ahead cap `max_distance * |stride|`, and `degree` the
    /// per-feed push budget. `limit` and `degree` are invariant along a
    /// locked stretch (the stride never changes under expected feeds).
    pub(crate) fn ramp_state(&self, i: usize) -> (i64, u64, u32) {
        let s = &self.streams[i];
        let st = s.stride.unsigned_abs();
        let limit = self.max_distance.saturating_mul(st);
        let r = if s.stride >= 0 {
            s.frontier.wrapping_sub(s.last) as i64
        } else {
            s.last.wrapping_sub(s.frontier) as i64
        };
        (r, limit, self.degree as u32)
    }

    /// [`StridePrefetcher::observe_expected`] specialised to a feed whose
    /// pushes are all pre-denied by the caller's throttle arithmetic and
    /// whose ramp regime guarantees exactly `degree` pushes (no frontier
    /// lag, no limit break): the identical stream transition with the
    /// emitted lines dropped unmaterialised.
    pub(crate) fn feed_denied(&mut self, i: usize, line: u64) {
        self.clock += 1;
        let advance = (self.degree as i64).wrapping_mul(self.streams[i].stride);
        let s = &mut self.streams[i];
        debug_assert!(s.stride != 0 && s.last.wrapping_add(s.stride as u64) == line);
        // The regime implies a prior confirming feed, so the push budget
        // is live (confidence reaches >= 2 with this feed).
        debug_assert!(s.confidence >= 1);
        s.confidence = s.confidence.saturating_add(1);
        s.last = line;
        s.stamp = self.clock;
        s.frontier = (s.frontier as i64).wrapping_add(advance) as u64;
    }

    /// [`StridePrefetcher::observe_expected`] specialised to a parked
    /// stream (`parked(i)` true, `line` the exact predicted successor):
    /// the identical transition, returning the single line the full path
    /// would have emitted.
    pub(crate) fn feed_parked(&mut self, i: usize, line: u64) -> u64 {
        self.clock += 1;
        let s = &mut self.streams[i];
        debug_assert!(s.stride != 0 && s.last.wrapping_add(s.stride as u64) == line);
        debug_assert!(s.confidence >= 1);
        s.confidence = s.confidence.saturating_add(1);
        s.last = line;
        s.stamp = self.clock;
        let next = (s.frontier as i64).wrapping_add(s.stride) as u64;
        s.frontier = next;
        next
    }

    /// How many consecutive lines of the arithmetic sequence starting at
    /// `next_line` with stride `stride` are safe from exact-match capture
    /// by a stream with index *below* `f` (the table scan breaks at the
    /// first exact predicted match, so only lower indices can preempt
    /// `f`; nearest-window candidates never beat an exact match).
    pub(crate) fn capture_free_steps(&self, f: usize, next_line: u64, stride: i64) -> u64 {
        debug_assert!(stride != 0);
        let mut safe = u64::MAX;
        for s in &self.streams[..f.min(self.streams.len())] {
            if s.stride == 0 {
                continue;
            }
            let predicted = s.last.wrapping_add(s.stride as u64);
            // First k >= 0 with next_line + k*stride == predicted. The
            // wrapped difference reinterpreted as signed is exact for all
            // realistic distances (|diff| < 2^63). Division stays in
            // 64-bit arithmetic (the 128-bit form compiles to a libcall
            // on the replay hot path); unit strides avoid it entirely.
            let diff = predicted.wrapping_sub(next_line) as i64;
            let k: i128 = match stride {
                1 => i128::from(diff),
                -1 => -i128::from(diff),
                st => match (diff.checked_rem(st), diff.checked_div(st)) {
                    (Some(r), _) if r != 0 => continue,
                    (Some(_), Some(q)) => i128::from(q),
                    // i64::MIN / -1 style overflow: widen.
                    _ => {
                        let (d, w) = (i128::from(diff), i128::from(st));
                        if d % w != 0 {
                            continue;
                        }
                        d / w
                    }
                },
            };
            if (0..safe as i128).contains(&k) {
                safe = k as u64;
                if safe == 0 {
                    return 0;
                }
            }
        }
        safe
    }

    /// Streams allocated so far (see the `creations` field).
    pub(crate) fn creations(&self) -> u64 {
        self.creations
    }

    /// Whether the table is inert (degree zero): observes then only
    /// advance the clock.
    pub(crate) fn disabled(&self) -> bool {
        self.degree == 0
    }

    /// Advances the observe clock by `n` without touching the table —
    /// mirrors `n` degree-zero observes.
    pub(crate) fn tick(&mut self, n: u64) {
        self.clock += n;
    }

    /// Immutable view of the stream table, index order (creation order up
    /// to `swap_remove` permutations), for state snapshots.
    pub(crate) fn streams(&self) -> &[Stream] {
        &self.streams
    }

    /// Mutable view of the stream table, for state translation.
    pub(crate) fn streams_mut(&mut self) -> &mut [Stream] {
        &mut self.streams
    }

    /// Drops all tracked streams.
    pub fn reset(&mut self) {
        self.streams.clear();
        self.creations = 0;
    }
}

impl crate::strategy::Prefetcher for StridePrefetcher {
    fn box_clone(&self) -> Box<dyn crate::strategy::Prefetcher> {
        Box::new(self.clone())
    }

    fn observe_into(&mut self, line: u64, out: &mut Vec<u64>) -> Option<usize> {
        StridePrefetcher::observe_into(self, line, out)
    }

    fn expects(&self, i: usize, line: u64) -> bool {
        StridePrefetcher::expects(self, i, line)
    }

    fn observe_expected(&mut self, i: usize, line: u64, out: &mut Vec<u64>) {
        StridePrefetcher::observe_expected(self, i, line, out);
    }

    fn capture_free_steps(&self, i: usize, next_line: u64, stride: i64) -> u64 {
        StridePrefetcher::capture_free_steps(self, i, next_line, stride)
    }

    fn ramp_state(&self, i: usize) -> Option<(i64, u64, u32)> {
        Some(StridePrefetcher::ramp_state(self, i))
    }

    fn feed_denied(&mut self, i: usize, line: u64) {
        StridePrefetcher::feed_denied(self, i, line);
    }

    fn feed_parked(&mut self, i: usize, line: u64) -> u64 {
        StridePrefetcher::feed_parked(self, i, line)
    }

    fn creations(&self) -> u64 {
        StridePrefetcher::creations(self)
    }

    fn disabled(&self) -> bool {
        StridePrefetcher::disabled(self)
    }

    fn tick(&mut self, n: u64) {
        StridePrefetcher::tick(self, n);
    }

    fn reset(&mut self) {
        StridePrefetcher::reset(self);
    }

    fn snapshot(&self) -> crate::strategy::PrefetchSnap {
        crate::strategy::PrefetchSnap(crate::strategy::SnapRepr::Streams {
            streams: self.streams().to_vec(),
            creations: self.creations,
        })
    }

    fn matches_translated(&self, snap: &crate::strategy::PrefetchSnap, t: i64) -> bool {
        let crate::strategy::SnapRepr::Streams { streams, creations } = &snap.0 else {
            return false;
        };
        if self.creations != *creations || self.streams.len() != streams.len() {
            return false;
        }
        self.streams.iter().zip(streams).all(|(c, s)| {
            c.stride == s.stride
                && c.confidence == s.confidence
                && c.last == s.last.wrapping_add_signed(t)
                && c.frontier == s.frontier.wrapping_add_signed(t)
        })
    }

    fn translate(&mut self, shift: i64) {
        for s in self.streams_mut() {
            s.last = s.last.wrapping_add_signed(shift);
            s.frontier = s.frontier.wrapping_add_signed(shift);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_detected_after_two_confirmations() {
        let mut p = StridePrefetcher::new(2, 20);
        assert!(p.observe(100).is_empty()); // new stream
        assert!(p.observe(101).is_empty()); // confidence 1
        let pf = p.observe(102); // confidence 2 -> prefetch
        assert_eq!(pf, vec![103, 104]);
    }

    #[test]
    fn non_unit_stride_detected() {
        let mut p = StridePrefetcher::new(1, 20);
        p.observe(0);
        p.observe(8);
        let pf = p.observe(16);
        assert_eq!(pf, vec![24]);
    }

    #[test]
    fn negative_stride_detected() {
        let mut p = StridePrefetcher::new(1, 20);
        p.observe(1000);
        p.observe(996);
        let pf = p.observe(992);
        assert_eq!(pf, vec![988]);
    }

    #[test]
    fn distance_limit_caps_runahead() {
        let mut p = StridePrefetcher::new(4, 3);
        p.observe(0);
        p.observe(1);
        // Frontier can reach at most line 2 + 3 = 5.
        let pf = p.observe(2);
        assert_eq!(pf, vec![3, 4, 5]);
        // No further prefetch until demand advances.
        let pf = p.observe(3);
        assert_eq!(pf, vec![6]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(2, 20);
        p.observe(0);
        p.observe(1);
        assert!(!p.observe(2).is_empty());
        // Break the stride: jump by 5 (within match window).
        assert!(p.observe(7).is_empty());
        assert!(!p.observe(12).is_empty()); // re-confirms at delta 5
    }

    #[test]
    fn far_accesses_form_separate_streams() {
        let mut p = StridePrefetcher::new(1, 20);
        p.observe(0);
        p.observe(1_000_000);
        p.observe(1);
        p.observe(1_000_001);
        let a = p.observe(2);
        let b = p.observe(1_000_002);
        assert_eq!(a, vec![3]);
        assert_eq!(b, vec![1_000_003]);
    }

    #[test]
    fn zero_degree_never_prefetches() {
        let mut p = StridePrefetcher::new(0, 20);
        p.observe(0);
        p.observe(1);
        assert!(p.observe(2).is_empty());
    }

    #[test]
    fn reset_forgets_streams() {
        let mut p = StridePrefetcher::new(1, 20);
        p.observe(0);
        p.observe(1);
        p.reset();
        assert!(p.observe(2).is_empty());
        assert!(p.observe(3).is_empty());
    }

    #[test]
    fn table_capacity_recycles_oldest() {
        let mut p = StridePrefetcher::new(1, 20);
        // Create 40 distinct far-apart streams; table holds 32.
        for s in 0..40u64 {
            p.observe(s * 1_000_000);
        }
        // The first stream was evicted; re-observing shouldn't match it.
        assert!(p.observe(1).is_empty());
        assert_eq!(p.creations(), 41);
    }

    #[test]
    fn expected_path_matches_scan_path() {
        let mut scan = StridePrefetcher::new(2, 20);
        let mut fast = StridePrefetcher::new(2, 20);
        // Warm both on the same stride-3 stream.
        for line in [0u64, 3, 6] {
            scan.observe(line);
            fast.observe(line);
        }
        let mut buf = Vec::new();
        for line in (9..60).step_by(3) {
            let slow = scan.observe(line);
            assert!(fast.expects(0, line));
            buf.clear();
            fast.observe_expected(0, line, &mut buf);
            assert_eq!(slow, buf, "line {line}");
        }
        assert_eq!(fast.capture_free_steps(0, 60, 3), u64::MAX);
    }

    #[test]
    fn confidence_threshold_delays_issuing() {
        // min_confidence 4: the stride must repeat four times.
        let mut p = StridePrefetcher::with_confidence(2, 20, 4);
        assert!(p.observe(100).is_empty()); // new stream
        assert!(p.observe(101).is_empty()); // confidence 1
        assert!(p.observe(102).is_empty()); // confidence 2
        assert!(p.observe(103).is_empty()); // confidence 3
        assert_eq!(p.observe(104), vec![105, 106]); // confidence 4
    }

    #[test]
    fn stream_engine_ignores_non_unit_strides() {
        let mut p = StridePrefetcher::stream(2, 20, 2);
        p.observe(0);
        p.observe(8);
        assert!(p.observe(16).is_empty(), "non-unit stride must never issue");
        assert!(p.observe(24).is_empty());
        // A unit-stride stream issues normally after `confirm` repeats.
        let mut p = StridePrefetcher::stream(2, 20, 2);
        p.observe(1000);
        p.observe(1001);
        assert_eq!(p.observe(1002), vec![1003, 1004]);
        // Descending unit stride counts too.
        let mut p = StridePrefetcher::stream(1, 20, 2);
        p.observe(5000);
        p.observe(4999);
        assert_eq!(p.observe(4998), vec![4997]);
    }

    #[test]
    fn default_knobs_match_the_seed_unit() {
        // `new` is the paper's unit: threshold 2, any stride.
        let a = StridePrefetcher::new(2, 20);
        let b = StridePrefetcher::with_confidence(2, 20, 2);
        assert_eq!(a.min_confidence, b.min_confidence);
        assert!(!a.unit_only);
    }

    #[test]
    fn expected_path_matches_scan_path_with_knobs() {
        for (mk, label) in [
            (StridePrefetcher::with_confidence(2, 20, 4), "confident"),
            (StridePrefetcher::stream(2, 20, 3), "stream"),
        ] {
            let mut scan = mk.clone();
            let mut fast = mk;
            for line in [0u64, 1, 2] {
                scan.observe(line);
                fast.observe(line);
            }
            let mut buf = Vec::new();
            for line in 3..40u64 {
                let slow = scan.observe(line);
                assert!(fast.expects(0, line), "{label} line {line}");
                buf.clear();
                fast.observe_expected(0, line, &mut buf);
                assert_eq!(slow, buf, "{label} line {line}");
            }
        }
    }

    #[test]
    fn capture_free_steps_finds_lower_stream_collision() {
        let mut p = StridePrefetcher::new(1, 20);
        // Stream 0: stride 10 at last=100 (predicts 110).
        p.observe(100);
        p.observe(110); // wait — delta 10 within window, stride 10 now
                        // Stream 1: far away, stride 4 at last=1_000_000.
        p.observe(1_000_000);
        p.observe(1_000_004);
        // Stream 1's lines 1_000_008, 1_000_012, ... never collide with
        // stream 0's prediction of 120.
        assert_eq!(p.capture_free_steps(1, 1_000_008, 4), u64::MAX);
        // A sequence that walks straight into the prediction: from 100,
        // stride 5 → 100+4*5 = 120 = stream 0's predicted line.
        assert_eq!(p.capture_free_steps(1, 100, 5), 4);
    }
}
