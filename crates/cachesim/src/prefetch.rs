//! Constant-stride stream prefetcher (the L2 unit of the paper).

/// One tracked access stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Last demand line observed for this stream.
    last: u64,
    /// Detected stride in lines (may be negative).
    stride: i64,
    /// Consecutive confirmations of `stride`.
    confidence: u8,
    /// Furthest line already prefetched for this stream.
    frontier: u64,
    /// LRU stamp.
    stamp: u64,
}

/// A stream-table constant-stride prefetcher.
///
/// Mirrors the paper's model of the Intel L2 prefetcher: it detects
/// constant strides (unit or not — "modern hardware prefetching units are
/// also capable of detecting non-unit strides"), issues `degree`
/// (`L2pref`) prefetches per triggering access, and never runs more than
/// `max_distance` (`L2maxpref`) lines ahead of the demand stream.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    streams: Vec<Stream>,
    capacity: usize,
    degree: usize,
    max_distance: u64,
    clock: u64,
    /// Window (in lines) within which a new address is matched to an
    /// existing stream.
    match_window: i64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with the given degree (`L2pref`) and maximum
    /// run-ahead distance in lines (`L2maxpref`).
    pub fn new(degree: usize, max_distance: usize) -> Self {
        StridePrefetcher {
            streams: Vec::new(),
            capacity: 32,
            degree,
            max_distance: max_distance as u64,
            clock: 0,
            match_window: 64,
        }
    }

    /// Observes a demand access to `line` and returns the lines to
    /// prefetch (empty until a stream's stride is confirmed).
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        self.clock += 1;
        if self.degree == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();

        // Find the stream this access extends: best = the one whose
        // predicted next line is exactly `line`, else the nearest one
        // within the match window.
        let mut best: Option<usize> = None;
        let mut best_score = i64::MAX;
        for (i, s) in self.streams.iter().enumerate() {
            let predicted = s.last.wrapping_add(s.stride as u64);
            if predicted == line && s.stride != 0 {
                best = Some(i);
                break;
            }
            let d = (line as i64).wrapping_sub(s.last as i64);
            if d != 0 && d.abs() <= self.match_window && d.abs() < best_score {
                best = Some(i);
                best_score = d.abs();
            }
        }

        match best {
            Some(i) => {
                let delta = (line as i64).wrapping_sub(self.streams[i].last as i64);
                let s = &mut self.streams[i];
                if delta == 0 {
                    s.stamp = self.clock;
                    return out;
                }
                if delta == s.stride {
                    s.confidence = s.confidence.saturating_add(1);
                } else {
                    s.stride = delta;
                    s.confidence = 1;
                    s.frontier = line;
                }
                s.last = line;
                s.stamp = self.clock;
                if s.confidence >= 2 {
                    let stride = s.stride;
                    // The frontier never lags the demand stream.
                    if (stride > 0 && s.frontier < line) || (stride < 0 && s.frontier > line) {
                        s.frontier = line;
                    }
                    let limit_ahead = self.max_distance;
                    for _ in 0..self.degree {
                        let next = (s.frontier as i64).wrapping_add(stride) as u64;
                        let ahead = (next as i64 - line as i64).unsigned_abs();
                        if ahead > limit_ahead.saturating_mul(stride.unsigned_abs().max(1)) {
                            break;
                        }
                        s.frontier = next;
                        out.push(next);
                    }
                }
            }
            None => {
                if self.streams.len() == self.capacity {
                    let oldest = self
                        .streams
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.stamp)
                        .map(|(i, _)| i)
                        .expect("capacity > 0");
                    self.streams.swap_remove(oldest);
                }
                self.streams.push(Stream {
                    last: line,
                    stride: 0,
                    confidence: 0,
                    frontier: line,
                    stamp: self.clock,
                });
            }
        }
        out
    }

    /// Drops all tracked streams.
    pub fn reset(&mut self) {
        self.streams.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_detected_after_two_confirmations() {
        let mut p = StridePrefetcher::new(2, 20);
        assert!(p.observe(100).is_empty()); // new stream
        assert!(p.observe(101).is_empty()); // confidence 1
        let pf = p.observe(102); // confidence 2 -> prefetch
        assert_eq!(pf, vec![103, 104]);
    }

    #[test]
    fn non_unit_stride_detected() {
        let mut p = StridePrefetcher::new(1, 20);
        p.observe(0);
        p.observe(8);
        let pf = p.observe(16);
        assert_eq!(pf, vec![24]);
    }

    #[test]
    fn negative_stride_detected() {
        let mut p = StridePrefetcher::new(1, 20);
        p.observe(1000);
        p.observe(996);
        let pf = p.observe(992);
        assert_eq!(pf, vec![988]);
    }

    #[test]
    fn distance_limit_caps_runahead() {
        let mut p = StridePrefetcher::new(4, 3);
        p.observe(0);
        p.observe(1);
        // Frontier can reach at most line 2 + 3 = 5.
        let pf = p.observe(2);
        assert_eq!(pf, vec![3, 4, 5]);
        // No further prefetch until demand advances.
        let pf = p.observe(3);
        assert_eq!(pf, vec![6]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(2, 20);
        p.observe(0);
        p.observe(1);
        assert!(!p.observe(2).is_empty());
        // Break the stride: jump by 5 (within match window).
        assert!(p.observe(7).is_empty());
        assert!(!p.observe(12).is_empty()); // re-confirms at delta 5
    }

    #[test]
    fn far_accesses_form_separate_streams() {
        let mut p = StridePrefetcher::new(1, 20);
        p.observe(0);
        p.observe(1_000_000);
        p.observe(1);
        p.observe(1_000_001);
        let a = p.observe(2);
        let b = p.observe(1_000_002);
        assert_eq!(a, vec![3]);
        assert_eq!(b, vec![1_000_003]);
    }

    #[test]
    fn zero_degree_never_prefetches() {
        let mut p = StridePrefetcher::new(0, 20);
        p.observe(0);
        p.observe(1);
        assert!(p.observe(2).is_empty());
    }

    #[test]
    fn reset_forgets_streams() {
        let mut p = StridePrefetcher::new(1, 20);
        p.observe(0);
        p.observe(1);
        p.reset();
        assert!(p.observe(2).is_empty());
        assert!(p.observe(3).is_empty());
    }

    #[test]
    fn table_capacity_recycles_oldest() {
        let mut p = StridePrefetcher::new(1, 20);
        // Create 40 distinct far-apart streams; table holds 32.
        for s in 0..40u64 {
            p.observe(s * 1_000_000);
        }
        // The first stream was evicted; re-observing shouldn't match it.
        assert!(p.observe(1).is_empty());
    }
}
