//! Kernel definitions.
//!
//! All kernels are expressed as single-statement perfect loop nests over
//! row-major arrays, matching how the paper feeds algorithm definitions
//! to its optimizer. Triangular kernels (`trmm`) are rectangularized with
//! an iteration-space guard (see DESIGN.md substitutions): the guard
//! keeps the computation correct while the analytical models treat the
//! nest as rectangular — exactly the approximation the paper's models
//! make.

use palo_ir::{AffineIndex, BinOp, DType, Expr, ExprBuilder, IrError, LoopNest, NestBuilder};

/// `C[i][j] += A[i][k] * B[k][j]` over `n×n` f32 matrices.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn matmul(n: usize) -> Result<LoopNest, IrError> {
    matmul_named("matmul", "A", "B", "C", n)
}

fn matmul_named(
    name: &str,
    an: &str,
    bn: &str,
    cn: &str,
    n: usize,
) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new(name, DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array(an, &[n, n]);
    let bm = b.array(bn, &[n, n]);
    let c = b.array(cn, &[n, n]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build()
}

/// The three stages of the PolyBench `3mm` kernel:
/// `E = A·B`, `F = C·D`, `G = E·F`.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn threemm(n: usize) -> Result<Vec<LoopNest>, IrError> {
    Ok(vec![
        matmul_named("3mm_e", "A", "B", "E", n)?,
        matmul_named("3mm_f", "C", "D", "F", n)?,
        matmul_named("3mm_g", "E", "F", "G", n)?,
    ])
}

/// Generalized matrix multiplication
/// `C[i][j] += alpha * A[i][k] * B[k][j]` (the `beta·C` pre-scaling is a
/// separate O(n²) pass the optimizer never sees, as in the paper's
/// Halide formulation).
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn gemm(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("gemm", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let alpha = Expr::Const(1.5);
    b.accumulate(c, &[i, j], alpha * b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build()
}

/// Triangular matrix multiplication, rectangularized:
/// `out[i][j] += [k ≥ i] · A[k][i] * B[k][j]`.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn trmm(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("trmm", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let out = b.array("out", &[n, n]);
    let guard = ExprBuilder::ge(k, i);
    b.accumulate(out, &[i, j], guard * b.load(a, &[k, i]) * b.load(bm, &[k, j]));
    b.build()
}

/// Symmetric rank-k update `C[i][j] += A[i][k] * A[j][k]`.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn syrk(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("syrk", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let c = b.array("C", &[n, n]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(a, &[j, k]));
    b.build()
}

/// Symmetric rank-2k update
/// `C[i][j] += A[i][k]·B[j][k] + A[j][k]·B[i][k]`.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn syr2k(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("syr2k", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let t1 = b.load(a, &[i, k]) * b.load(bm, &[j, k]);
    let t2 = b.load(a, &[j, k]) * b.load(bm, &[i, k]);
    b.accumulate(c, &[i, j], t1 + t2);
    b.build()
}

/// PolyBench `doitgen` (multiresolution analysis):
/// `out[r][q][p] += A[r][q][s] * C4[s][p]` over an `n³` problem.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn doitgen(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("doitgen", DType::F32);
    let r = b.var("r", n);
    let q = b.var("q", n);
    let p = b.var("p", n);
    let s = b.var("s", n);
    let a = b.array("A", &[n, n, n]);
    let c4 = b.array("C4", &[n, n]);
    let out = b.array("out", &[n, n, n]);
    b.accumulate(out, &[r, q, p], b.load(a, &[r, q, s]) * b.load(c4, &[s, p]));
    b.build()
}

/// A `kr×kr` convolution layer over a batched multi-channel image:
/// `out[n][k][x][y] += w[k][c][rx][ry] * in[n][c][x+rx][y+ry]`.
///
/// `x`/`y` are the spatial output extents, `cin` the input channels,
/// `nb` the batch, `kout` the output channels, `kr` the kernel radius.
///
/// # Errors
///
/// Returns [`IrError`] when any extent is 0.
pub fn convlayer(
    x: usize,
    y: usize,
    cin: usize,
    nb: usize,
    kout: usize,
    kr: usize,
) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("convlayer", DType::F32);
    let n = b.var("n", nb);
    let k = b.var("k", kout);
    let xv = b.var("x", x);
    let yv = b.var("y", y);
    let c = b.var("c", cin);
    let rx = b.var("rx", kr);
    let ry = b.var("ry", kr);
    let input = b.array("in", &[nb, cin, x + kr - 1, y + kr - 1]);
    let w = b.array("w", &[kout, cin, kr, kr]);
    let out = b.array("out", &[nb, kout, x, y]);
    let in_x = AffineIndex::var(xv) + AffineIndex::var(rx);
    let in_y = AffineIndex::var(yv) + AffineIndex::var(ry);
    let ld_in = b.load_expr(input, vec![n.into(), c.into(), in_x, in_y]);
    let ld_w = b.load(w, &[k, c, rx, ry]);
    b.accumulate(out, &[n, k, xv, yv], ld_w * ld_in);
    b.build()
}

/// Matrix transposition `out[y][x] = A[x][y]`.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn tp(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("tp", DType::F32);
    let y = b.var("y", n);
    let x = b.var("x", n);
    let a = b.array("A", &[n, n]);
    let out = b.array("out", &[n, n]);
    let ld = b.load(a, &[x, y]);
    b.store(out, &[y, x], ld);
    b.build()
}

/// Transposition and masking `out[y][x] = A[x][y] & B[y][x]`
/// (the paper's Listing 2), on i32 data.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn tpm(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("tpm", DType::I32);
    let y = b.var("y", n);
    let x = b.var("x", n);
    let a = b.array("A", &[n, n]);
    let m = b.array("B", &[n, n]);
    let out = b.array("out", &[n, n]);
    let rhs = Expr::bin(BinOp::And, b.load(a, &[x, y]), b.load(m, &[y, x]));
    b.store(out, &[y, x], rhs);
    b.build()
}

/// Array copy `out[i][j] = A[i][j]`.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn copy(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("copy", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let a = b.array("A", &[n, n]);
    let out = b.array("out", &[n, n]);
    let ld = b.load(a, &[i, j]);
    b.store(out, &[i, j], ld);
    b.build()
}

/// Array mask `out[i][j] = A[i][j] & M[i][j]` on i32 data.
///
/// # Errors
///
/// Returns [`IrError`] when `n == 0`.
pub fn mask(n: usize) -> Result<LoopNest, IrError> {
    let mut b = NestBuilder::new("mask", DType::I32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let a = b.array("A", &[n, n]);
    let m = b.array("M", &[n, n]);
    let out = b.array("out", &[n, n]);
    let rhs = Expr::bin(BinOp::And, b.load(a, &[i, j]), b.load(m, &[i, j]));
    b.store(out, &[i, j], rhs);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::NestInfo;

    #[test]
    fn classifications_match_table_groups() {
        // Temporal kernels: different index sets.
        for nest in [
            matmul(32).unwrap(),
            gemm(32).unwrap(),
            trmm(32).unwrap(),
            syrk(32).unwrap(),
            syr2k(32).unwrap(),
            doitgen(16).unwrap(),
            convlayer(8, 8, 4, 2, 4, 3).unwrap(),
        ] {
            let info = NestInfo::analyze(&nest);
            assert!(info.has_temporal_reuse(), "{} should be temporal", nest.name());
        }
        // Spatial kernels: transposed inputs.
        for nest in [tp(32).unwrap(), tpm(32).unwrap()] {
            let info = NestInfo::analyze(&nest);
            assert!(!info.has_temporal_reuse(), "{}", nest.name());
            assert!(info.has_transposed_input(), "{}", nest.name());
        }
        // Contiguous kernels.
        for nest in [copy(32).unwrap(), mask(32).unwrap()] {
            let info = NestInfo::analyze(&nest);
            assert!(!info.has_temporal_reuse(), "{}", nest.name());
            assert!(!info.has_transposed_input(), "{}", nest.name());
            assert!(!info.output_is_read, "{}", nest.name());
        }
    }

    #[test]
    fn convlayer_shapes() {
        let c = convlayer(16, 16, 8, 2, 4, 3).unwrap();
        assert_eq!(c.vars().len(), 7);
        assert_eq!(c.arrays().len(), 3);
        assert_eq!(c.array(palo_ir::ArrayId(0)).dims, vec![2, 8, 18, 18]);
        // column var is y
        assert_eq!(c.column_var().map(|v| v.index()), Some(3));
    }

    #[test]
    fn trmm_guard_present() {
        let t = trmm(16).unwrap();
        assert!(format!("{t}").contains(">="));
    }

    #[test]
    fn iteration_counts() {
        assert_eq!(matmul(8).unwrap().iteration_count(), 512);
        assert_eq!(doitgen(4).unwrap().iteration_count(), 256);
        assert_eq!(tp(8).unwrap().iteration_count(), 64);
    }
}
