//! The paper's evaluation kernels (Table 4) expressed as palo loop nests.
//!
//! Twelve benchmarks in four families:
//!
//! * temporal-reuse kernels: `convlayer`, `doitgen`, `matmul`, `3mm`,
//!   `gemm`, `trmm`, `syrk`, `syr2k`;
//! * spatial-reuse kernels: `tp` (transposition), `tpm` (transposition and
//!   masking);
//! * contiguous kernels: `copy`, `mask`.
//!
//! Each kernel is available at a parameterized size ([`kernels`]) and at
//! the reproduction's scaled default ([`Benchmark::build_scaled`]) chosen
//! so that trace-driven simulation stays tractable while the data still
//! exceeds the L2 cache (DESIGN.md §5).
//!
//! # Examples
//!
//! ```
//! use palo_suite::{kernels, Benchmark};
//!
//! let nest = kernels::matmul(256)?;
//! assert_eq!(nest.vars().len(), 3);
//!
//! for b in Benchmark::all() {
//!     let nests = b.build_scaled()?;
//!     assert!(!nests.is_empty());
//! }
//! # Ok::<(), palo_ir::IrError>(())
//! ```

pub mod kernels;

use palo_ir::{IrError, LoopNest};
use serde::{Deserialize, Serialize};

/// One of the paper's twelve benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// 3×3 convolution layer (5-D+ loop nest).
    Convlayer,
    /// Multiresolution analysis kernel (4-D).
    Doitgen,
    /// Matrix multiplication.
    Matmul,
    /// Three chained matrix multiplications.
    ThreeMm,
    /// Generalized matrix-matrix multiplication.
    Gemm,
    /// Triangular matrix-matrix multiplication (rectangularized with a
    /// guard; see DESIGN.md).
    Trmm,
    /// Symmetric rank-k update.
    Syrk,
    /// Symmetric rank-2k update.
    Syr2k,
    /// Matrix transposition and masking.
    Tpm,
    /// Matrix transposition.
    Tp,
    /// Array copy.
    Copy,
    /// Array mask.
    Mask,
}

impl Benchmark {
    /// All twelve benchmarks in the paper's presentation order.
    pub fn all() -> [Benchmark; 12] {
        use Benchmark::*;
        [Convlayer, Doitgen, Matmul, ThreeMm, Gemm, Trmm, Syrk, Syr2k, Tpm, Tp, Copy, Mask]
    }

    /// The paper's short name.
    pub fn name(self) -> &'static str {
        use Benchmark::*;
        match self {
            Convlayer => "convlayer",
            Doitgen => "doitgen",
            Matmul => "matmul",
            ThreeMm => "3mm",
            Gemm => "gemm",
            Trmm => "trmm",
            Syrk => "syrk",
            Syr2k => "syr2k",
            Tpm => "tpm",
            Tp => "tp",
            Copy => "copy",
            Mask => "mask",
        }
    }

    /// The problem size used in the paper (Table 4).
    pub fn paper_size(self) -> &'static str {
        use Benchmark::*;
        match self {
            Convlayer => "256x256x64x16, 3x3x64x64",
            Doitgen => "256x256x256",
            Matmul | ThreeMm | Gemm | Trmm | Syrk | Syr2k => "2048x2048",
            Tpm | Tp | Copy | Mask => "4096x4096",
        }
    }

    /// The scaled size description used by this reproduction.
    pub fn scaled_size(self) -> &'static str {
        use Benchmark::*;
        match self {
            Convlayer => "32x32x16x4, 3x3x16x16",
            Doitgen => "96x96x96",
            Matmul | ThreeMm | Gemm | Trmm => "512x512",
            Syrk | Syr2k => "384x384",
            Tpm | Tp | Copy | Mask => "1024x1024",
        }
    }

    /// Whether the paper's classifier optimizes this benchmark for
    /// temporal reuse (the first group of Figure 4).
    pub fn is_temporal(self) -> bool {
        use Benchmark::*;
        matches!(self, Convlayer | Doitgen | Matmul | ThreeMm | Gemm | Trmm | Syrk | Syr2k)
    }

    /// Whether non-temporal stores apply (the last four of Figure 4).
    pub fn nti_applicable(self) -> bool {
        use Benchmark::*;
        matches!(self, Tpm | Tp | Copy | Mask)
    }

    /// Builds the benchmark at the reproduction's scaled size. Returns
    /// one nest per pipeline stage (three for `3mm`, one otherwise).
    ///
    /// # Errors
    ///
    /// Propagates [`IrError`] from nest validation (should not occur for
    /// the built-in sizes).
    pub fn build_scaled(self) -> Result<Vec<LoopNest>, IrError> {
        use Benchmark::*;
        Ok(match self {
            Convlayer => vec![kernels::convlayer(32, 32, 16, 4, 16, 3)?],
            Doitgen => vec![kernels::doitgen(96)?],
            Matmul => vec![kernels::matmul(512)?],
            ThreeMm => kernels::threemm(512)?,
            Gemm => vec![kernels::gemm(512)?],
            Trmm => vec![kernels::trmm(512)?],
            Syrk => vec![kernels::syrk(384)?],
            Syr2k => vec![kernels::syr2k(384)?],
            Tpm => vec![kernels::tpm(1024)?],
            Tp => vec![kernels::tp(1024)?],
            Copy => vec![kernels::copy(1024)?],
            Mask => vec![kernels::mask(1024)?],
        })
    }

    /// Builds the benchmark with its main dimension set to `size`
    /// (used by the Table 6 size sweep).
    ///
    /// # Errors
    ///
    /// Propagates [`IrError`] from nest validation.
    pub fn build(self, size: usize) -> Result<Vec<LoopNest>, IrError> {
        use Benchmark::*;
        Ok(match self {
            Convlayer => vec![kernels::convlayer(size, size, 16, 4, 16, 3)?],
            Doitgen => vec![kernels::doitgen(size)?],
            Matmul => vec![kernels::matmul(size)?],
            ThreeMm => kernels::threemm(size)?,
            Gemm => vec![kernels::gemm(size)?],
            Trmm => vec![kernels::trmm(size)?],
            Syrk => vec![kernels::syrk(size)?],
            Syr2k => vec![kernels::syr2k(size)?],
            Tpm => vec![kernels::tpm(size)?],
            Tp => vec![kernels::tp(size)?],
            Copy => vec![kernels::copy(size)?],
            Mask => vec![kernels::mask(size)?],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build() {
        for b in Benchmark::all() {
            let nests = b.build_scaled().unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(!nests.is_empty());
            for n in &nests {
                assert!(n.iteration_count() > 0);
            }
        }
    }

    #[test]
    fn threemm_has_three_stages() {
        assert_eq!(Benchmark::ThreeMm.build_scaled().unwrap().len(), 3);
        assert_eq!(Benchmark::Matmul.build_scaled().unwrap().len(), 1);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "convlayer",
                "doitgen",
                "matmul",
                "3mm",
                "gemm",
                "trmm",
                "syrk",
                "syr2k",
                "tpm",
                "tp",
                "copy",
                "mask"
            ]
        );
    }

    #[test]
    fn groups_match_figure_4() {
        let temporal: Vec<_> =
            Benchmark::all().iter().filter(|b| b.is_temporal()).map(|b| b.name()).collect();
        assert_eq!(temporal.len(), 8);
        let nti: Vec<_> =
            Benchmark::all().iter().filter(|b| b.nti_applicable()).map(|b| b.name()).collect();
        assert_eq!(nti, vec!["tpm", "tp", "copy", "mask"]);
    }

    #[test]
    fn parameterized_sizes_build() {
        for b in [Benchmark::Matmul, Benchmark::Trmm, Benchmark::Syrk, Benchmark::Syr2k] {
            for size in [128, 256, 320] {
                b.build(size).unwrap();
            }
        }
    }
}
