//! Affine index expressions over loop variables.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Sub};

/// Identifier of a loop variable, an index into [`crate::LoopNest::vars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

impl VarId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An affine combination of loop variables plus a constant offset:
/// `Σ coeff·var + offset`.
///
/// Every array subscript in the paper's kernels is of this form — plain
/// variables (`A[i][k]`), transposed variables (`A[x][y]` under an
/// `out[y][x]` output), and convolution windows (`in[x + rx]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffineIndex {
    /// `(variable, coefficient)` terms; kept sorted by variable and free of
    /// zero coefficients.
    terms: Vec<(VarId, i64)>,
    /// Constant offset.
    offset: i64,
}

impl AffineIndex {
    /// The constant expression `offset`.
    pub fn constant(offset: i64) -> Self {
        AffineIndex { terms: Vec::new(), offset }
    }

    /// The single-variable expression `var`.
    pub fn var(var: VarId) -> Self {
        AffineIndex { terms: vec![(var, 1)], offset: 0 }
    }

    /// Builds from raw terms, normalizing (merging duplicates, dropping
    /// zeros, sorting by variable).
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, i64)>, offset: i64) -> Self {
        let mut out = AffineIndex { terms: Vec::new(), offset };
        for (v, c) in terms {
            out.add_term(v, c);
        }
        out
    }

    fn add_term(&mut self, var: VarId, coeff: i64) {
        if coeff == 0 {
            return;
        }
        match self.terms.binary_search_by_key(&var, |&(v, _)| v) {
            Ok(pos) => {
                self.terms[pos].1 += coeff;
                if self.terms[pos].1 == 0 {
                    self.terms.remove(pos);
                }
            }
            Err(pos) => self.terms.insert(pos, (var, coeff)),
        }
    }

    /// The normalized `(variable, coefficient)` terms, sorted by variable.
    pub fn terms(&self) -> &[(VarId, i64)] {
        &self.terms
    }

    /// The constant offset.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Coefficient of `var` (zero when absent).
    pub fn coeff(&self, var: VarId) -> i64 {
        self.terms
            .binary_search_by_key(&var, |&(v, _)| v)
            .map(|pos| self.terms[pos].1)
            .unwrap_or(0)
    }

    /// Whether the expression mentions `var`.
    pub fn uses(&self, var: VarId) -> bool {
        self.coeff(var) != 0
    }

    /// Variables appearing with nonzero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// Whether this is a constant (no variable terms).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether this is exactly one variable with coefficient 1 and no
    /// offset.
    pub fn as_single_var(&self) -> Option<VarId> {
        match (self.terms.as_slice(), self.offset) {
            (&[(v, 1)], 0) => Some(v),
            _ => None,
        }
    }

    /// Evaluates the expression for a point of the iteration space, where
    /// `point[v.index()]` is the value of variable `v`.
    pub fn eval(&self, point: &[i64]) -> i64 {
        let mut acc = self.offset;
        for &(v, c) in &self.terms {
            acc += c * point[v.index()];
        }
        acc
    }

    /// Inclusive (min, max) value over the rectangular domain where each
    /// variable `v` ranges over `0..extents[v.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable's extent is zero.
    pub fn range(&self, extents: &[usize]) -> (i64, i64) {
        let mut lo = self.offset;
        let mut hi = self.offset;
        for &(v, c) in &self.terms {
            let ext = extents[v.index()];
            assert!(ext > 0, "extent of referenced variable must be nonzero");
            let span = c * (ext as i64 - 1);
            if span >= 0 {
                hi += span;
            } else {
                lo += span;
            }
        }
        (lo, hi)
    }
}

impl From<VarId> for AffineIndex {
    fn from(v: VarId) -> Self {
        AffineIndex::var(v)
    }
}

impl From<i64> for AffineIndex {
    fn from(c: i64) -> Self {
        AffineIndex::constant(c)
    }
}

impl Add for AffineIndex {
    type Output = AffineIndex;
    fn add(self, rhs: AffineIndex) -> AffineIndex {
        let mut out = self;
        out.offset += rhs.offset;
        for (v, c) in rhs.terms {
            out.add_term(v, c);
        }
        out
    }
}

impl Add<i64> for AffineIndex {
    type Output = AffineIndex;
    fn add(self, rhs: i64) -> AffineIndex {
        let mut out = self;
        out.offset += rhs;
        out
    }
}

impl Sub for AffineIndex {
    type Output = AffineIndex;
    fn sub(self, rhs: AffineIndex) -> AffineIndex {
        let mut out = self;
        out.offset -= rhs.offset;
        for (v, c) in rhs.terms {
            out.add_term(v, -c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_merges_and_drops_zero() {
        let e = AffineIndex::from_terms([(VarId(1), 2), (VarId(0), 1), (VarId(1), -2)], 3);
        assert_eq!(e.terms(), &[(VarId(0), 1)]);
        assert_eq!(e.offset(), 3);
    }

    #[test]
    fn single_var_detection() {
        assert_eq!(AffineIndex::var(VarId(2)).as_single_var(), Some(VarId(2)));
        assert_eq!((AffineIndex::var(VarId(2)) + 1).as_single_var(), None);
        let sum = AffineIndex::var(VarId(0)) + AffineIndex::var(VarId(1));
        assert_eq!(sum.as_single_var(), None);
        assert_eq!(AffineIndex::constant(0).as_single_var(), None);
    }

    #[test]
    fn eval_and_range() {
        // x + rx over x in 0..4, rx in 0..3
        let e = AffineIndex::var(VarId(0)) + AffineIndex::var(VarId(1));
        assert_eq!(e.eval(&[2, 1]), 3);
        assert_eq!(e.range(&[4, 3]), (0, 5));

        // 2x - 1
        let e = AffineIndex::from_terms([(VarId(0), 2)], -1);
        assert_eq!(e.range(&[4, 3]), (-1, 5));

        // -x
        let e = AffineIndex::from_terms([(VarId(0), -1)], 0);
        assert_eq!(e.range(&[4, 3]), (-3, 0));
    }

    #[test]
    fn add_sub_ops() {
        let x = AffineIndex::var(VarId(0));
        let y = AffineIndex::var(VarId(1));
        let e = x.clone() + y.clone() - x;
        assert_eq!(e, y);
    }

    #[test]
    fn uses_and_coeff() {
        let e = AffineIndex::from_terms([(VarId(0), 3)], 2);
        assert!(e.uses(VarId(0)));
        assert!(!e.uses(VarId(1)));
        assert_eq!(e.coeff(VarId(0)), 3);
        assert_eq!(e.coeff(VarId(9)), 0);
        assert!(!e.is_constant());
        assert!(AffineIndex::constant(5).is_constant());
    }
}
