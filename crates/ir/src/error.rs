//! IR construction and validation errors.

use std::error::Error;
use std::fmt;

/// Error produced while building or validating a loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A loop variable was declared with extent 0.
    EmptyLoop {
        /// Name of the offending variable.
        var: String,
    },
    /// An array was declared with a zero-sized dimension.
    EmptyArray {
        /// Name of the offending array.
        array: String,
    },
    /// An access has the wrong number of subscripts for its array.
    RankMismatch {
        /// Name of the accessed array.
        array: String,
        /// Number of declared dimensions.
        expected: usize,
        /// Number of subscripts in the access.
        found: usize,
    },
    /// A subscript can take values outside the array dimension.
    OutOfBounds {
        /// Name of the accessed array.
        array: String,
        /// Offending dimension index.
        dim: usize,
        /// Inclusive subscript range over the iteration domain.
        range: (i64, i64),
        /// Declared extent of that dimension.
        extent: usize,
    },
    /// The nest was built without a statement.
    MissingStatement,
    /// A referenced variable or array does not belong to this nest.
    UnknownId {
        /// Description of the dangling reference.
        what: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyLoop { var } => write!(f, "loop variable {var:?} has extent 0"),
            IrError::EmptyArray { array } => {
                write!(f, "array {array:?} has a zero-sized dimension")
            }
            IrError::RankMismatch { array, expected, found } => write!(
                f,
                "access to {array:?} has {found} subscripts but the array has {expected} dimensions"
            ),
            IrError::OutOfBounds { array, dim, range, extent } => write!(
                f,
                "subscript {dim} of {array:?} spans {range:?} but the extent is {extent}"
            ),
            IrError::MissingStatement => write!(f, "loop nest has no statement"),
            IrError::UnknownId { what } => write!(f, "unknown reference: {what}"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IrError::RankMismatch { array: "A".into(), expected: 2, found: 3 };
        let s = e.to_string();
        assert!(s.contains("A"));
        assert!(s.contains('3'));
        assert!(s.contains('2'));

        let e = IrError::OutOfBounds { array: "B".into(), dim: 1, range: (0, 99), extent: 64 };
        assert!(e.to_string().contains("extent is 64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<IrError>();
    }
}
