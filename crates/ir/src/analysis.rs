//! Static analyses over loop nests used by the classifier and the cost
//! models: index-set comparison, transposition detection, and per-variable
//! access strides.

use crate::access::Access;
use crate::affine::VarId;
use crate::nest::LoopNest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Memory-stride behaviour of one access with respect to one loop
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InnermostStride {
    /// The access does not depend on the variable (stride 0 — temporal
    /// reuse carried by that loop).
    Invariant,
    /// Consecutive iterations touch adjacent elements (stride 1).
    Contiguous,
    /// Constant non-unit stride in elements.
    Strided(i64),
}

/// How one input access relates to the output access — the patterns the
/// paper's classification step (Fig. 2) distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Same index variables in the same order (constant offsets allowed):
    /// the access streams along with the output (copy/mask/stencil style).
    Aligned,
    /// Same index variables but in a different order: the access is
    /// transposed relative to the output.
    Transposed,
    /// Different index-variable set from the output: the loop nest carries
    /// temporal reuse for this access.
    DifferentIndices,
}

/// Summary of the analyses the optimizer needs, computed once per nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestInfo {
    /// Index variables of the output access.
    pub output_vars: BTreeSet<VarId>,
    /// Pattern of each input access (in [`crate::Statement::inputs`]
    /// order) relative to the output.
    pub input_patterns: Vec<AccessPattern>,
    /// Variables that do not appear in the output subscripts (reduction
    /// dimensions such as `k` in matmul).
    pub reduction_vars: Vec<VarId>,
    /// Whether the output is also read by the statement (accumulation).
    pub output_is_read: bool,
    /// Whether every input access uses only constant-offset variants of
    /// the output indices (stencil shape).
    pub is_stencil_like: bool,
}

impl NestInfo {
    /// Runs all analyses on a nest.
    pub fn analyze(nest: &LoopNest) -> Self {
        let out = &nest.statement().output;
        let output_vars = out.var_set();
        let out_order = out.var_order();

        let mut input_patterns = Vec::new();
        let mut is_stencil_like = true;
        for acc in nest.statement().inputs() {
            let p = classify_access(acc, &output_vars, &out_order);
            if p != AccessPattern::Aligned {
                is_stencil_like = false;
            }
            input_patterns.push(p);
        }
        // A bare store with no inputs is trivially aligned but not a
        // stencil in any useful sense; keep the flag meaning "all inputs
        // aligned and at least one has a nonzero offset or there are
        // none": the classifier only needs "no reuse, no transpose".

        let reduction_vars =
            (0..nest.vars().len()).map(VarId).filter(|v| !output_vars.contains(v)).collect();

        NestInfo {
            output_vars,
            input_patterns,
            reduction_vars,
            output_is_read: nest.statement().output_is_read(),
            is_stencil_like,
        }
    }

    /// Whether any input access indexes with a variable set different from
    /// the output's — the paper's trigger for the temporal optimizer.
    pub fn has_temporal_reuse(&self) -> bool {
        self.input_patterns.contains(&AccessPattern::DifferentIndices)
    }

    /// Whether any input access appears transposed relative to the output
    /// — the paper's trigger for the spatial optimizer.
    pub fn has_transposed_input(&self) -> bool {
        self.input_patterns.contains(&AccessPattern::Transposed)
    }
}

fn classify_access(
    acc: &Access,
    output_vars: &BTreeSet<VarId>,
    out_order: &[VarId],
) -> AccessPattern {
    let vars = acc.var_set();
    if vars != *output_vars {
        // "Unique indices in the input arrays different from the ones in
        // the output array" (Fig. 2) — reduction-style reuse. An input
        // using a strict subset (e.g. a broadcast vector) also revisits
        // its data across the missing dimensions.
        return AccessPattern::DifferentIndices;
    }
    let in_order = acc.var_order();
    if is_inverted(&in_order, out_order) {
        AccessPattern::Transposed
    } else {
        AccessPattern::Aligned
    }
}

/// Whether `a` and `b` order any pair of common variables oppositely.
fn is_inverted(a: &[VarId], b: &[VarId]) -> bool {
    let pos = |order: &[VarId], v: VarId| order.iter().position(|&x| x == v);
    for (i, &u) in a.iter().enumerate() {
        for &v in &a[i + 1..] {
            if let (Some(bu), Some(bv)) = (pos(b, u), pos(b, v)) {
                if (bu < bv) != (i < pos(a, v).unwrap()) {
                    return true;
                }
            }
        }
    }
    false
}

/// Stride in elements of `acc` when `var` increases by one, given the
/// accessed array's row-major element strides.
pub fn stride_of(acc: &Access, var: VarId, array_strides: &[usize]) -> InnermostStride {
    let mut stride: i64 = 0;
    for (ix, &s) in acc.indices.iter().zip(array_strides) {
        stride += ix.coeff(var) * s as i64;
    }
    match stride {
        0 => InnermostStride::Invariant,
        1 => InnermostStride::Contiguous,
        s => InnermostStride::Strided(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NestBuilder;
    use crate::dtype::DType;
    use crate::expr::{BinOp, Expr};
    use crate::AffineIndex;

    fn matmul() -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", 64);
        let j = b.var("j", 64);
        let k = b.var("k", 64);
        let a = b.array("A", &[64, 64]);
        let bm = b.array("B", &[64, 64]);
        let c = b.array("C", &[64, 64]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    fn transpose_mask() -> LoopNest {
        let mut b = NestBuilder::new("tpm", DType::I32);
        let y = b.var("y", 64);
        let x = b.var("x", 64);
        let a = b.array("A", &[64, 64]);
        let m = b.array("B", &[64, 64]);
        let out = b.array("out", &[64, 64]);
        let rhs = Expr::bin(BinOp::And, b.load(a, &[x, y]), b.load(m, &[y, x]));
        b.store(out, &[y, x], rhs);
        b.build().unwrap()
    }

    fn copy() -> LoopNest {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", 64);
        let j = b.var("j", 64);
        let src = b.array("src", &[64, 64]);
        let dst = b.array("dst", &[64, 64]);
        let ld = b.load(src, &[i, j]);
        b.store(dst, &[i, j], ld);
        b.build().unwrap()
    }

    fn stencil() -> LoopNest {
        let mut b = NestBuilder::new("blur", DType::F32);
        let i = b.var("i", 64);
        let j = b.var("j", 62);
        let src = b.array("src", &[64, 64]);
        let dst = b.array("dst", &[64, 64]);
        let c0 = b.load_expr(src, vec![AffineIndex::var(i), AffineIndex::var(j)]);
        let c1 = b.load_expr(src, vec![AffineIndex::var(i), AffineIndex::var(j) + 1]);
        let c2 = b.load_expr(src, vec![AffineIndex::var(i), AffineIndex::var(j) + 2]);
        b.store(dst, &[i, j], c0 + c1 + c2);
        b.build().unwrap()
    }

    #[test]
    fn matmul_is_temporal() {
        let info = NestInfo::analyze(&matmul());
        assert!(info.has_temporal_reuse());
        assert!(info.output_is_read);
        assert_eq!(info.reduction_vars, vec![VarId(2)]);
        assert!(!info.is_stencil_like);
    }

    #[test]
    fn tpm_is_spatial() {
        let info = NestInfo::analyze(&transpose_mask());
        assert!(!info.has_temporal_reuse());
        assert!(info.has_transposed_input());
        assert!(!info.output_is_read);
        // A[x][y] transposed, B[y][x] aligned
        assert_eq!(
            info.input_patterns,
            vec![AccessPattern::Transposed, AccessPattern::Aligned]
        );
    }

    #[test]
    fn copy_is_contiguous_only() {
        let info = NestInfo::analyze(&copy());
        assert!(!info.has_temporal_reuse());
        assert!(!info.has_transposed_input());
        assert!(info.is_stencil_like);
    }

    #[test]
    fn stencil_offsets_stay_aligned() {
        let info = NestInfo::analyze(&stencil());
        assert!(!info.has_temporal_reuse());
        assert!(!info.has_transposed_input());
        assert!(info.is_stencil_like);
    }

    #[test]
    fn strides() {
        let m = matmul();
        let strides = m.array(crate::ArrayId(1)).strides(); // B
        let b_acc = m.statement().rhs.loads()[2].clone(); // B[k][j]
        assert_eq!(stride_of(&b_acc, VarId(1), &strides), InnermostStride::Contiguous);
        assert_eq!(stride_of(&b_acc, VarId(2), &strides), InnermostStride::Strided(64));
        assert_eq!(stride_of(&b_acc, VarId(0), &strides), InnermostStride::Invariant);
    }

    #[test]
    fn inversion_detection() {
        let a = [VarId(0), VarId(1)];
        let b = [VarId(1), VarId(0)];
        assert!(is_inverted(&a, &b));
        assert!(!is_inverted(&a, &a));
        // disjoint orders are not inverted
        assert!(!is_inverted(&[VarId(0)], &[VarId(1)]));
    }
}
