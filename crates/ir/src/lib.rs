//! Loop-nest intermediate representation for the palo optimizer.
//!
//! The paper's optimizer consumes an *algorithmic description* of a loop
//! nest — in the original work a Halide function definition. This crate is
//! the Halide-replacement substrate: a small IR that carries exactly the
//! information the classifier and the analytical models inspect:
//!
//! * loop variables with rectangular bounds (`Bi`, Table 1),
//! * arrays with row-major layout and a data-type size (`DTS`),
//! * a single innermost statement whose operand accesses are affine
//!   functions of the loop variables (sufficient for every kernel in the
//!   paper's evaluation, including convolution windows `x + rx` and
//!   transposed accesses `A[x][y]`).
//!
//! # Examples
//!
//! Building the paper's running example (matrix multiplication,
//! Listing 1):
//!
//! ```
//! use palo_ir::{DType, NestBuilder};
//!
//! let mut b = NestBuilder::new("matmul", DType::F32);
//! let i = b.var("i", 2048);
//! let j = b.var("j", 2048);
//! let k = b.var("k", 2048);
//! let a = b.array("A", &[2048, 2048]);
//! let bm = b.array("B", &[2048, 2048]);
//! let c = b.array("C", &[2048, 2048]);
//! b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
//! let nest = b.build()?;
//!
//! assert_eq!(nest.vars().len(), 3);
//! assert_eq!(nest.statement().inputs().count(), 3); // C, A, B loads
//! # Ok::<(), palo_ir::IrError>(())
//! ```

mod access;
mod affine;
mod analysis;
mod builder;
mod display;
mod dtype;
mod error;
mod expr;
pub mod fingerprint;
mod nest;

pub use access::{Access, ArrayDecl, ArrayId};
pub use affine::{AffineIndex, VarId};
pub use analysis::{stride_of, AccessPattern, InnermostStride, NestInfo};
pub use builder::{ExprBuilder, NestBuilder};
pub use dtype::DType;
pub use error::IrError;
pub use expr::{BinOp, Expr, UnOp};
pub use fingerprint::{Digest, StableHash, StableHasher};
pub use nest::{LoopNest, LoopVar, Statement};
