//! Arrays and array accesses.

use crate::affine::{AffineIndex, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifier of an array, an index into [`crate::LoopNest::arrays`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub usize);

impl ArrayId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A declared array: name and row-major extents.
///
/// The *last* dimension is contiguous in memory; the paper calls the loop
/// dimension that walks it the *leading (column) dimension* (`Bc`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Name used in diagnostics and pretty-printing.
    pub name: String,
    /// Extent of each dimension, outermost first (row-major).
    pub dims: Vec<usize>,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides in elements, one per dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for d in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.dims[d + 1];
        }
        strides
    }
}

/// A subscripted reference to an array: `array[idx0][idx1]...`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// The referenced array.
    pub array: ArrayId,
    /// One affine subscript per array dimension, outermost first.
    pub indices: Vec<AffineIndex>,
}

impl Access {
    /// Creates an access; subscripts are given outermost-first.
    pub fn new(array: ArrayId, indices: Vec<AffineIndex>) -> Self {
        Access { array, indices }
    }

    /// The set of loop variables appearing anywhere in the subscripts.
    ///
    /// This is the "unique indices" notion of the paper's classification
    /// step (Fig. 2).
    pub fn var_set(&self) -> BTreeSet<VarId> {
        self.indices.iter().flat_map(|ix| ix.vars()).collect()
    }

    /// The loop variable controlling the innermost (contiguous) subscript,
    /// when that subscript is a plain variable (with any constant offset).
    pub fn innermost_var(&self) -> Option<VarId> {
        let last = self.indices.last()?;
        match last.terms() {
            [(v, 1)] => Some(*v),
            _ => None,
        }
    }

    /// Whether the access depends on `var` in any subscript.
    pub fn uses(&self, var: VarId) -> bool {
        self.indices.iter().any(|ix| ix.uses(var))
    }

    /// The order in which loop variables appear across subscripts,
    /// outermost subscript first. Multi-variable subscripts contribute all
    /// their variables in term order. Used for transposition detection.
    pub fn var_order(&self) -> Vec<VarId> {
        let mut order = Vec::new();
        for ix in &self.indices {
            for v in ix.vars() {
                if !order.contains(&v) {
                    order.push(v);
                }
            }
        }
        order
    }

    /// Linearized element offset of the access at an iteration point,
    /// given the array's row-major `strides`.
    ///
    /// Returns `None` when a subscript is negative (out of domain).
    pub fn linear_offset(&self, point: &[i64], strides: &[usize]) -> Option<usize> {
        debug_assert_eq!(self.indices.len(), strides.len());
        let mut off = 0usize;
        for (ix, &stride) in self.indices.iter().zip(strides) {
            let v = ix.eval(point);
            if v < 0 {
                return None;
            }
            off += v as usize * stride;
        }
        Some(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl() -> ArrayDecl {
        ArrayDecl { name: "A".into(), dims: vec![4, 8, 16] }
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(decl().strides(), vec![128, 16, 1]);
        assert_eq!(decl().len(), 512);
        assert!(!decl().is_empty());
    }

    #[test]
    fn var_set_and_order() {
        // A[k][i] — the transposed access of the paper's Listing 3.
        let a = Access::new(
            ArrayId(0),
            vec![AffineIndex::var(VarId(2)), AffineIndex::var(VarId(0))],
        );
        assert_eq!(a.var_set().into_iter().collect::<Vec<_>>(), vec![VarId(0), VarId(2)]);
        assert_eq!(a.var_order(), vec![VarId(2), VarId(0)]);
        assert_eq!(a.innermost_var(), Some(VarId(0)));
        assert!(a.uses(VarId(2)));
        assert!(!a.uses(VarId(1)));
    }

    #[test]
    fn innermost_var_none_for_compound() {
        let sum = AffineIndex::var(VarId(0)) + AffineIndex::var(VarId(1));
        let a = Access::new(ArrayId(0), vec![sum]);
        assert_eq!(a.innermost_var(), None);
        let off = Access::new(ArrayId(0), vec![AffineIndex::var(VarId(0)) + 1]);
        assert_eq!(off.innermost_var(), Some(VarId(0)));
    }

    #[test]
    fn linear_offset() {
        let d = decl();
        let a = Access::new(
            ArrayId(0),
            vec![
                AffineIndex::var(VarId(0)),
                AffineIndex::var(VarId(1)),
                AffineIndex::var(VarId(2)),
            ],
        );
        assert_eq!(a.linear_offset(&[1, 2, 3], &d.strides()), Some(128 + 32 + 3));
        // negative subscript rejected
        let neg = Access::new(ArrayId(0), vec![AffineIndex::var(VarId(0)) + -1]);
        assert_eq!(neg.linear_offset(&[0], &[1]), None);
    }
}
