//! Ergonomic construction of loop nests.

use crate::access::{Access, ArrayDecl, ArrayId};
use crate::affine::{AffineIndex, VarId};
use crate::dtype::DType;
use crate::error::IrError;
use crate::expr::{BinOp, Expr};
use crate::nest::{LoopNest, LoopVar, Statement};

/// Incrementally builds a [`LoopNest`].
///
/// Declare loop variables outermost-first with [`NestBuilder::var`], arrays
/// with [`NestBuilder::array`], then set the statement with
/// [`NestBuilder::store`] / [`NestBuilder::accumulate`] and finish with
/// [`NestBuilder::build`].
///
/// # Examples
///
/// The transposition-and-masking kernel of the paper's Listing 2:
///
/// ```
/// use palo_ir::{DType, NestBuilder, BinOp, Expr};
///
/// let mut b = NestBuilder::new("tpm", DType::I32);
/// let y = b.var("y", 4096);
/// let x = b.var("x", 4096);
/// let a = b.array("A", &[4096, 4096]);
/// let m = b.array("B", &[4096, 4096]);
/// let out = b.array("out", &[4096, 4096]);
/// let rhs = Expr::bin(BinOp::And, b.load(a, &[x, y]), b.load(m, &[y, x]));
/// b.store(out, &[y, x], rhs);
/// let nest = b.build()?;
/// assert_eq!(nest.name(), "tpm");
/// # Ok::<(), palo_ir::IrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NestBuilder {
    name: String,
    dtype: DType,
    vars: Vec<LoopVar>,
    arrays: Vec<ArrayDecl>,
    stmt: Option<Statement>,
}

impl NestBuilder {
    /// Starts a nest with the given kernel name and element type.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        NestBuilder {
            name: name.into(),
            dtype,
            vars: Vec::new(),
            arrays: Vec::new(),
            stmt: None,
        }
    }

    /// Declares the next (one level deeper) loop variable.
    pub fn var(&mut self, name: impl Into<String>, extent: usize) -> VarId {
        self.vars.push(LoopVar { name: name.into(), extent });
        VarId(self.vars.len() - 1)
    }

    /// Declares an array with row-major `dims`.
    pub fn array(&mut self, name: impl Into<String>, dims: &[usize]) -> ArrayId {
        self.arrays.push(ArrayDecl { name: name.into(), dims: dims.to_vec() });
        ArrayId(self.arrays.len() - 1)
    }

    /// A load expression `array[vars...]` with plain-variable subscripts.
    pub fn load(&self, array: ArrayId, vars: &[VarId]) -> Expr {
        Expr::Load(Access::new(array, vars.iter().map(|&v| AffineIndex::var(v)).collect()))
    }

    /// A load expression with arbitrary affine subscripts.
    pub fn load_expr(&self, array: ArrayId, indices: Vec<AffineIndex>) -> Expr {
        Expr::Load(Access::new(array, indices))
    }

    /// Sets the statement `array[vars...] = rhs` (plain-variable output
    /// subscripts). Replaces any previously set statement.
    pub fn store(&mut self, array: ArrayId, vars: &[VarId], rhs: Expr) {
        self.store_expr(array, vars.iter().map(|&v| AffineIndex::var(v)).collect(), rhs);
    }

    /// Sets the statement with arbitrary affine output subscripts.
    pub fn store_expr(&mut self, array: ArrayId, indices: Vec<AffineIndex>, rhs: Expr) {
        self.stmt = Some(Statement { output: Access::new(array, indices), rhs });
    }

    /// Sets the accumulation statement
    /// `array[vars...] = array[vars...] + rhs`.
    pub fn accumulate(&mut self, array: ArrayId, vars: &[VarId], rhs: Expr) {
        let out = self.load(array, vars);
        self.store(array, vars, Expr::bin(BinOp::Add, out, rhs));
    }

    /// Finishes and validates the nest.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::MissingStatement`] when no statement was set, or
    /// any validation error from [`LoopNest::new`].
    pub fn build(self) -> Result<LoopNest, IrError> {
        let stmt = self.stmt.ok_or(IrError::MissingStatement)?;
        LoopNest::new(self.name, self.dtype, self.vars, self.arrays, stmt)
    }
}

/// Free-function expression helpers usable without a builder.
pub mod helpers {
    use super::*;

    /// A constant expression.
    pub fn constant(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// `1.0` when `lhs >= rhs` else `0.0` — the rectangularization guard
    /// used by triangular kernels.
    pub fn ge(lhs: impl Into<AffineIndex>, rhs: impl Into<AffineIndex>) -> Expr {
        Expr::GeIndicator(lhs.into(), rhs.into())
    }
}

/// Re-export of expression helpers under a short name.
pub use helpers as ExprBuilder;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_statement_is_an_error() {
        let b = NestBuilder::new("empty", DType::F32);
        assert!(matches!(b.build(), Err(IrError::MissingStatement)));
    }

    #[test]
    fn accumulate_reads_output() {
        let mut b = NestBuilder::new("acc", DType::F32);
        let i = b.var("i", 4);
        let a = b.array("A", &[4]);
        let c = b.array("C", &[4]);
        let ld = b.load(a, &[i]);
        b.accumulate(c, &[i], ld);
        let nest = b.build().unwrap();
        assert!(nest.statement().output_is_read());
    }

    #[test]
    fn store_replaces_previous_statement() {
        let mut b = NestBuilder::new("replace", DType::F32);
        let i = b.var("i", 4);
        let a = b.array("A", &[4]);
        let c = b.array("C", &[4]);
        let ld = b.load(a, &[i]);
        b.store(c, &[i], ld.clone());
        b.store(c, &[i], ld + Expr::Const(1.0));
        let nest = b.build().unwrap();
        assert_eq!(nest.statement().rhs.op_count(), 1);
    }

    #[test]
    fn ge_helper_builds_indicator() {
        let g = helpers::ge(AffineIndex::var(VarId(0)), 3i64);
        assert!(matches!(g, Expr::GeIndicator(..)));
    }
}
