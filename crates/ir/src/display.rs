//! Pretty-printing of nests as C-like pseudocode.

use crate::access::Access;
use crate::affine::AffineIndex;
use crate::expr::{BinOp, Expr, UnOp};
use crate::nest::LoopNest;
use std::fmt;

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// {} ({})", self.name(), self.dtype())?;
        for (depth, v) in self.vars().iter().enumerate() {
            let pad = "  ".repeat(depth);
            writeln!(f, "{pad}for {} in 0..{} {{", v.name, v.extent)?;
        }
        let pad = "  ".repeat(self.vars().len());
        writeln!(
            f,
            "{pad}{} = {};",
            self.fmt_access(&self.statement().output),
            self.fmt_expr(&self.statement().rhs)
        )?;
        for depth in (0..self.vars().len()).rev() {
            writeln!(f, "{}}}", "  ".repeat(depth))?;
        }
        Ok(())
    }
}

impl LoopNest {
    fn fmt_index(&self, ix: &AffineIndex) -> String {
        let mut parts = Vec::new();
        for &(v, c) in ix.terms() {
            let name = &self.vars()[v.index()].name;
            match c {
                1 => parts.push(name.clone()),
                -1 => parts.push(format!("-{name}")),
                c => parts.push(format!("{c}*{name}")),
            }
        }
        if ix.offset() != 0 || parts.is_empty() {
            parts.push(ix.offset().to_string());
        }
        parts.join(" + ").replace("+ -", "- ")
    }

    fn fmt_access(&self, a: &Access) -> String {
        let name = &self.array(a.array).name;
        let subs: Vec<String> =
            a.indices.iter().map(|ix| format!("[{}]", self.fmt_index(ix))).collect();
        format!("{name}{}", subs.join(""))
    }

    fn fmt_expr(&self, e: &Expr) -> String {
        match e {
            Expr::Load(a) => self.fmt_access(a),
            Expr::Const(c) => format!("{c}"),
            Expr::Bin(op, l, r) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::And => "&",
                    BinOp::Max => {
                        return format!("max({}, {})", self.fmt_expr(l), self.fmt_expr(r))
                    }
                    BinOp::Min => {
                        return format!("min({}, {})", self.fmt_expr(l), self.fmt_expr(r))
                    }
                };
                format!("({} {sym} {})", self.fmt_expr(l), self.fmt_expr(r))
            }
            Expr::Un(UnOp::Neg, e) => format!("(-{})", self.fmt_expr(e)),
            Expr::Un(UnOp::Abs, e) => format!("abs({})", self.fmt_expr(e)),
            Expr::GeIndicator(l, r) => {
                format!("({} >= {} ? 1 : 0)", self.fmt_index(l), self.fmt_index(r))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::NestBuilder;
    use crate::dtype::DType;

    #[test]
    fn matmul_prints_like_c() {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", 4);
        let j = b.var("j", 4);
        let k = b.var("k", 4);
        let a = b.array("A", &[4, 4]);
        let bm = b.array("B", &[4, 4]);
        let c = b.array("C", &[4, 4]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        let s = b.build().unwrap().to_string();
        assert!(s.contains("for i in 0..4"));
        assert!(s.contains("C[i][j] = (C[i][j] + (A[i][k] * B[k][j]));"));
    }

    #[test]
    fn offsets_print() {
        use crate::AffineIndex;
        let mut b = NestBuilder::new("shift", DType::F32);
        let i = b.var("i", 4);
        let src = b.array("s", &[8]);
        let dst = b.array("d", &[4]);
        let ld = b.load_expr(src, vec![AffineIndex::var(i) + 2]);
        b.store(dst, &[i], ld);
        let s = b.build().unwrap().to_string();
        assert!(s.contains("s[i + 2]"), "{s}");
    }
}
