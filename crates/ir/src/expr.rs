//! Right-hand-side computation expressions.

use crate::access::Access;
use crate::affine::AffineIndex;
use serde::{Deserialize, Serialize};

/// Binary operators available in statement right-hand sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Bitwise AND (the masking operator of the paper's Listing 2);
    /// on float data it is applied to the raw bits.
    And,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
}

/// A computation expression tree.
///
/// Loads are the leaves the paper's classifier inspects; arithmetic
/// structure only matters to the compute-mode interpreter. `GeIndicator`
/// evaluates to 1 or 0 and is how triangular kernels (trmm, syrk) guard
/// their rectangularized iteration space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A load from an array.
    Load(Access),
    /// A floating-point constant (bit-cast for integer dtypes).
    Const(f64),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `1.0` when `lhs >= rhs` at the current iteration point, else `0.0`.
    GeIndicator(AffineIndex, AffineIndex),
}

impl Expr {
    /// All loads in the expression, in evaluation order.
    pub fn loads(&self) -> Vec<&Access> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<&'a Access>) {
        match self {
            Expr::Load(a) => out.push(a),
            Expr::Const(_) | Expr::GeIndicator(..) => {}
            Expr::Bin(_, l, r) => {
                l.collect_loads(out);
                r.collect_loads(out);
            }
            Expr::Un(_, e) => e.collect_loads(out),
        }
    }

    /// Number of arithmetic operations in one evaluation (used by the
    /// timing model's compute estimate).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Load(_) | Expr::Const(_) => 0,
            Expr::GeIndicator(..) => 1,
            Expr::Bin(_, l, r) => 1 + l.op_count() + r.op_count(),
            Expr::Un(_, e) => 1 + e.op_count(),
        }
    }

    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ArrayId;
    use crate::affine::VarId;

    fn load(id: usize) -> Expr {
        Expr::Load(Access::new(ArrayId(id), vec![AffineIndex::var(VarId(0))]))
    }

    #[test]
    fn loads_in_order() {
        let e = load(0) * load(1) + load(2);
        let ids: Vec<_> = e.loads().iter().map(|a| a.array).collect();
        assert_eq!(ids, vec![ArrayId(0), ArrayId(1), ArrayId(2)]);
    }

    #[test]
    fn op_count() {
        let e = load(0) * load(1) + load(2);
        assert_eq!(e.op_count(), 2);
        assert_eq!(Expr::Const(1.0).op_count(), 0);
        let g = Expr::GeIndicator(AffineIndex::var(VarId(0)), AffineIndex::constant(1));
        assert_eq!(g.op_count(), 1);
        assert_eq!(Expr::Un(UnOp::Neg, Box::new(load(0))).op_count(), 1);
    }

    #[test]
    fn operator_sugar_builds_nodes() {
        let e = load(0) - load(1);
        match e {
            Expr::Bin(BinOp::Sub, ..) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
