//! Stable content hashing for IR values.
//!
//! The pass framework in `palo-core` keys its artifact cache by a
//! *fingerprint* of the request — and a cache key must be stable across
//! processes, runs and platforms, which rules out
//! [`std::hash::Hash`]/[`std::collections::hash_map::DefaultHasher`]
//! (SipHash with unspecified keys and an unspecified algorithm). This
//! module provides the substrate:
//!
//! * [`StableHasher`] — 128-bit FNV-1a over an explicit byte encoding.
//!   Every multi-byte integer is folded in little-endian, floats as their
//!   IEEE-754 bits, strings as length-prefixed UTF-8, so the digest is a
//!   pure function of the value;
//! * [`StableHash`] — the trait hashable values implement. Collections
//!   are length-prefixed (so `["ab"], ["a","b"]` differ) and enums fold a
//!   discriminant byte before their payload;
//! * [`Digest`] — the resulting 128-bit value, printable as hex.
//!
//! [`LoopNest`] hashes in *canonical form*: everything that can influence
//! an optimization, lowering, validation or simulation artifact — loop
//! names and extents, dtype, array declarations, the statement tree — is
//! folded in; the nest's kernel *name* is display-only metadata and is
//! deliberately excluded, so renaming a kernel does not invalidate its
//! cached artifacts.

use crate::access::{Access, ArrayDecl, ArrayId};
use crate::affine::{AffineIndex, VarId};
use crate::dtype::DType;
use crate::expr::{BinOp, Expr, UnOp};
use crate::nest::{LoopNest, LoopVar, Statement};

/// A 128-bit stable content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming 128-bit FNV-1a hasher with an explicit, stable encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher { state: FNV_OFFSET }
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte (enum discriminants, booleans).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds a `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64`, so 32- and 64-bit targets agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `i64` little-endian.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a float as its exact IEEE-754 bits (no tolerance: a cache
    /// key must distinguish values the arithmetic distinguishes).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string as length-prefixed UTF-8.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything folded so far.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

/// A value with a stable, content-addressed hash.
///
/// Implementations must fold *every* field that can influence derived
/// artifacts and must be injective in practice: length-prefix variable
/// collections and tag enum variants.
pub trait StableHash {
    /// Folds `self` into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);

    /// Convenience: the digest of `self` alone.
    fn digest(&self) -> Digest {
        let mut h = StableHasher::new();
        self.stable_hash(&mut h);
        h.finish()
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(*self as u8);
    }
}

impl StableHash for u64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableHash for usize {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(*self);
    }
}

impl StableHash for i64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(*self);
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl StableHash for VarId {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.0);
    }
}

impl StableHash for ArrayId {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.0);
    }
}

impl StableHash for DType {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            DType::F32 => 0,
            DType::F64 => 1,
            DType::I32 => 2,
            DType::I64 => 3,
            DType::U8 => 4,
            DType::U16 => 5,
        });
    }
}

impl StableHash for AffineIndex {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Terms are kept normalized (sorted, zero-free) by construction,
        // so the field encoding is already canonical.
        h.write_usize(self.terms().len());
        for &(v, c) in self.terms() {
            v.stable_hash(h);
            h.write_i64(c);
        }
        h.write_i64(self.offset());
    }
}

impl StableHash for Access {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.array.stable_hash(h);
        self.indices.stable_hash(h);
    }
}

impl StableHash for ArrayDecl {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        self.dims.stable_hash(h);
    }
}

impl StableHash for BinOp {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Max => 3,
            BinOp::Min => 4,
            BinOp::And => 5,
        });
    }
}

impl StableHash for UnOp {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            UnOp::Neg => 0,
            UnOp::Abs => 1,
        });
    }
}

impl StableHash for Expr {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Expr::Load(a) => {
                h.write_u8(0);
                a.stable_hash(h);
            }
            Expr::Const(c) => {
                h.write_u8(1);
                h.write_f64(*c);
            }
            Expr::Bin(op, l, r) => {
                h.write_u8(2);
                op.stable_hash(h);
                l.stable_hash(h);
                r.stable_hash(h);
            }
            Expr::Un(op, e) => {
                h.write_u8(3);
                op.stable_hash(h);
                e.stable_hash(h);
            }
            Expr::GeIndicator(l, r) => {
                h.write_u8(4);
                l.stable_hash(h);
                r.stable_hash(h);
            }
        }
    }
}

impl StableHash for LoopVar {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Names are part of the canonical form: schedules address loops
        // by name, so a rename changes the lowered artifacts.
        h.write_str(&self.name);
        h.write_usize(self.extent);
    }
}

impl StableHash for Statement {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.output.stable_hash(h);
        self.rhs.stable_hash(h);
    }
}

impl StableHash for LoopNest {
    /// Canonical form: dtype, loops (name + extent, program order),
    /// array declarations and the statement tree. The kernel name is
    /// excluded — it labels output, it never changes an artifact.
    fn stable_hash(&self, h: &mut StableHasher) {
        self.dtype().stable_hash(h);
        self.vars().stable_hash(h);
        self.arrays().stable_hash(h);
        self.statement().stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NestBuilder;

    fn matmul(name: &str, n: usize, dtype: DType) -> LoopNest {
        let mut b = NestBuilder::new(name, dtype);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn digest_is_deterministic_and_known() {
        let a = matmul("mm", 32, DType::F32).digest();
        let b = matmul("mm", 32, DType::F32).digest();
        assert_eq!(a, b);
        // Hex rendering is zero-padded to 32 nibbles.
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn kernel_name_is_not_part_of_the_canonical_form() {
        assert_eq!(
            matmul("mm", 32, DType::F32).digest(),
            matmul("renamed", 32, DType::F32).digest()
        );
    }

    #[test]
    fn bounds_and_dtype_change_the_digest() {
        let base = matmul("mm", 32, DType::F32).digest();
        assert_ne!(base, matmul("mm", 33, DType::F32).digest());
        assert_ne!(base, matmul("mm", 32, DType::F64).digest());
    }

    #[test]
    fn length_prefixing_separates_concatenations() {
        let mut h1 = StableHasher::new();
        ["ab".to_string()].as_slice().stable_hash(&mut h1);
        let mut h2 = StableHasher::new();
        ["a".to_string(), "b".to_string()].as_slice().stable_hash(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn float_bits_distinguish_negative_zero() {
        assert_ne!((0.0f64).digest(), (-0.0f64).digest());
        assert_eq!((1.5f64).digest(), (1.5f64).digest());
    }

    #[test]
    fn option_tagging_separates_none_from_zero() {
        let none: Option<u64> = None;
        assert_ne!(none.digest(), Some(0u64).digest());
    }
}
