//! Loop nests and statements.

use crate::access::{Access, ArrayDecl, ArrayId};
use crate::affine::VarId;
use crate::dtype::DType;
use crate::error::IrError;
use crate::expr::Expr;
use serde::{Deserialize, Serialize};

/// A loop variable with its rectangular extent (`Bi`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopVar {
    /// Name used in diagnostics and pretty-printing.
    pub name: String,
    /// Trip count; the variable ranges over `0..extent`.
    pub extent: usize,
}

/// The innermost statement of a nest: `output = rhs`, executed at every
/// point of the iteration space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    /// The stored-to access.
    pub output: Access,
    /// The computed value.
    pub rhs: Expr,
}

impl Statement {
    /// All input (load) accesses of the right-hand side, in evaluation
    /// order. Includes a load of the output array when the statement is an
    /// accumulation (`C = C + ...`).
    pub fn inputs(&self) -> impl Iterator<Item = &Access> {
        self.rhs.loads().into_iter()
    }

    /// Whether the output array is also read by the right-hand side
    /// (i.e. the statement is a reduction/accumulation). Such outputs have
    /// temporal reuse and must not use non-temporal stores.
    pub fn output_is_read(&self) -> bool {
        self.rhs.loads().iter().any(|a| a.array == self.output.array)
    }
}

/// A perfect loop nest around a single statement.
///
/// Loops are stored outermost-first in *program order*; the optimizer is
/// free to reorder them (that is the point of the paper). The iteration
/// domain is the full rectangle `Π 0..extent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopNest {
    name: String,
    dtype: DType,
    vars: Vec<LoopVar>,
    arrays: Vec<ArrayDecl>,
    stmt: Statement,
}

impl LoopNest {
    /// Assembles and validates a nest. Prefer [`crate::NestBuilder`].
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] when a loop or array is empty, an access has
    /// the wrong rank, a subscript can exceed its dimension, or an id does
    /// not refer to this nest.
    pub fn new(
        name: impl Into<String>,
        dtype: DType,
        vars: Vec<LoopVar>,
        arrays: Vec<ArrayDecl>,
        stmt: Statement,
    ) -> Result<Self, IrError> {
        let nest = LoopNest { name: name.into(), dtype, vars, arrays, stmt };
        nest.validate()?;
        Ok(nest)
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type of every array in the nest.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Loop variables, outermost-first in program order.
    pub fn vars(&self) -> &[LoopVar] {
        &self.vars
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The innermost statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// Extent of a loop variable.
    pub fn extent(&self, var: VarId) -> usize {
        self.vars[var.index()].extent
    }

    /// Extents of all loop variables, indexed by [`VarId`].
    pub fn extents(&self) -> Vec<usize> {
        self.vars.iter().map(|v| v.extent).collect()
    }

    /// Declaration of an array.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Total number of iteration points.
    pub fn iteration_count(&self) -> u128 {
        self.vars.iter().map(|v| v.extent as u128).product()
    }

    /// The loop variable that walks the contiguous (last) dimension of the
    /// *output* array — the paper's "leading (column) dimension" whose
    /// bound is `Bc`. `None` when the output's innermost subscript is not a
    /// plain variable.
    pub fn column_var(&self) -> Option<VarId> {
        self.stmt.output.innermost_var()
    }

    /// Every access in the statement: output first, then inputs in
    /// evaluation order.
    pub fn accesses(&self) -> Vec<&Access> {
        let mut v = vec![&self.stmt.output];
        v.extend(self.stmt.rhs.loads());
        v
    }

    fn validate(&self) -> Result<(), IrError> {
        for v in &self.vars {
            if v.extent == 0 {
                return Err(IrError::EmptyLoop { var: v.name.clone() });
            }
        }
        for a in &self.arrays {
            if a.dims.contains(&0) {
                return Err(IrError::EmptyArray { array: a.name.clone() });
            }
        }
        let extents = self.extents();
        for acc in self.accesses() {
            let decl = self
                .arrays
                .get(acc.array.index())
                .ok_or_else(|| IrError::UnknownId { what: format!("array {:?}", acc.array) })?;
            if acc.indices.len() != decl.dims.len() {
                return Err(IrError::RankMismatch {
                    array: decl.name.clone(),
                    expected: decl.dims.len(),
                    found: acc.indices.len(),
                });
            }
            for (dim, ix) in acc.indices.iter().enumerate() {
                for v in ix.vars() {
                    if v.index() >= self.vars.len() {
                        return Err(IrError::UnknownId { what: format!("variable {v:?}") });
                    }
                }
                let range = ix.range(&extents);
                if range.0 < 0 || range.1 >= decl.dims[dim] as i64 {
                    return Err(IrError::OutOfBounds {
                        array: decl.name.clone(),
                        dim,
                        range,
                        extent: decl.dims[dim],
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineIndex;
    use crate::builder::NestBuilder;

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn matmul_basics() {
        let m = matmul(16);
        assert_eq!(m.vars().len(), 3);
        assert_eq!(m.iteration_count(), 16 * 16 * 16);
        assert_eq!(m.column_var(), Some(VarId(1))); // j
        assert!(m.statement().output_is_read());
        assert_eq!(m.accesses().len(), 4); // store C + loads C, A, B
    }

    #[test]
    fn non_accumulating_output_not_read() {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", 8);
        let j = b.var("j", 8);
        let src = b.array("src", &[8, 8]);
        let dst = b.array("dst", &[8, 8]);
        let ld = b.load(src, &[i, j]);
        b.store(dst, &[i, j], ld);
        let nest = b.build().unwrap();
        assert!(!nest.statement().output_is_read());
    }

    #[test]
    fn rejects_out_of_bounds_window() {
        // in[x + rx] with in too small
        let mut b = NestBuilder::new("conv", DType::F32);
        let x = b.var("x", 8);
        let rx = b.var("rx", 3);
        let input = b.array("in", &[8]); // needs 10
        let out = b.array("out", &[8]);
        let ix = AffineIndex::var(x) + AffineIndex::var(rx);
        let ld = Expr::Load(Access::new(input, vec![ix]));
        b.store_expr(out, vec![AffineIndex::var(x)], ld + b.load(out, &[x]));
        match b.build() {
            Err(IrError::OutOfBounds { array, .. }) => assert_eq!(array, "in"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_rank_mismatch() {
        let mut b = NestBuilder::new("bad", DType::F32);
        let i = b.var("i", 4);
        let a = b.array("A", &[4, 4]);
        let out = b.array("out", &[4]);
        let ld = b.load(a, &[i]); // rank 1 access to rank 2 array
        b.store(out, &[i], ld);
        assert!(matches!(b.build(), Err(IrError::RankMismatch { .. })));
    }

    #[test]
    fn rejects_empty_loop() {
        let mut b = NestBuilder::new("bad", DType::F32);
        let i = b.var("i", 0);
        let a = b.array("A", &[1]);
        let ld = b.load(a, &[i]);
        b.store(a, &[i], ld);
        assert!(matches!(b.build(), Err(IrError::EmptyLoop { .. })));
    }

    #[test]
    fn column_var_none_for_compound_innermost() {
        let mut b = NestBuilder::new("weird", DType::F32);
        let x = b.var("x", 4);
        let r = b.var("r", 2);
        let a = b.array("A", &[8]);
        let out = b.array("out", &[8]);
        let ix = AffineIndex::var(x) + AffineIndex::var(r);
        let ld = Expr::Load(Access::new(a, vec![ix.clone()]));
        b.store_expr(out, vec![ix], ld);
        let nest = b.build().unwrap();
        assert_eq!(nest.column_var(), None);
    }
}
