//! Element data types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of an array (`DTS` in the paper is [`DType::size_bytes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 8-bit unsigned integer.
    U8,
    /// 16-bit unsigned integer.
    U16,
}

impl DType {
    /// Size of one element in bytes (`DTS`).
    pub fn size_bytes(self) -> usize {
        match self {
            DType::U8 => 1,
            DType::U16 => 2,
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
        }
    }

    /// Whether values of this type are integers (bitwise ops allowed).
    pub fn is_integer(self) -> bool {
        matches!(self, DType::I32 | DType::I64 | DType::U8 | DType::U16)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::U8 => "u8",
            DType::U16 => "u16",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::U8.size_bytes(), 1);
        assert_eq!(DType::U16.size_bytes(), 2);
    }

    #[test]
    fn integerness() {
        assert!(!DType::F32.is_integer());
        assert!(DType::I32.is_integer());
        assert!(DType::U8.is_integer());
    }

    #[test]
    fn display() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::U16.to_string(), "u16");
    }
}
