//! # palo — Prefetch-Aware Loop Optimizer
//!
//! A reproduction of *Loop Transformations Leveraging Hardware Prefetching*
//! (Sioutas, Stuijk, Corporaal, Basten, Somers — CGO 2018) as a standalone
//! Rust library: a loop-nest IR, a schedule language, an analytical
//! prefetch-aware optimizer, a multi-level cache simulator with hardware
//! prefetchers, and reimplementations of the baselines the paper compares
//! against.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! * [`ir`] — loop-nest IR ([`palo_ir`])
//! * [`arch`] — architecture descriptions ([`palo_arch`])
//! * [`codec`] — strict JSON + checksummed binary artifact framing
//!   ([`palo_codec`])
//! * [`sched`] — schedule directives and lowering ([`palo_sched`])
//! * [`cachesim`] — cache + prefetcher simulator ([`palo_cachesim`])
//! * [`exec`] — interpreter and trace generator ([`palo_exec`])
//! * [`core`] — the paper's optimizer ([`palo_core`])
//! * [`baselines`] — Baseline / Auto-Scheduler / Autotuner / TSS / TTS
//!   ([`palo_baselines`])
//! * [`suite`] — the 12 evaluation kernels ([`palo_suite`])
//! * [`serve`] — the long-lived optimization daemon ([`palo_serve`])
//!
//! # Examples
//!
//! Optimize matrix multiplication for the Intel i7-5930K and inspect the
//! resulting schedule:
//!
//! ```
//! use palo::arch::presets;
//! use palo::core::Optimizer;
//! use palo::suite::kernels;
//!
//! let nest = kernels::matmul(256)?;
//! let arch = presets::intel_i7_5930k();
//! let decision = Optimizer::new(&arch).try_optimize(&nest)?;
//! let schedule = decision.schedule();
//! assert!(!schedule.directives().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Or run the whole fault-tolerant flow — optimize, lower, validate,
//! simulate — through [`core::Pipeline`], which degrades to simpler
//! schedules instead of failing and reports what happened:
//!
//! ```
//! use palo::arch::presets;
//! use palo::core::{Pipeline, Rung};
//! use palo::suite::kernels;
//!
//! let nest = kernels::matmul(96)?;
//! let out = Pipeline::new(&presets::intel_i7_5930k()).run(&nest)?;
//! assert_eq!(out.report.rung, Rung::Proposed); // no degradation needed
//! assert!(out.report.estimate.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use palo_arch as arch;
pub use palo_baselines as baselines;
pub use palo_cachesim as cachesim;
pub use palo_codec as codec;
pub use palo_core as core;
pub use palo_exec as exec;
pub use palo_ir as ir;
pub use palo_sched as sched;
pub use palo_serve as serve;
pub use palo_suite as suite;
