//! `palo-opt` — the command-line face of the optimizer, mirroring the
//! tool the paper ships for Halide: give it a kernel, a size and a
//! platform; get the optimization schedule (and optionally a simulated
//! time estimate) back in milliseconds of optimizer runtime.
//!
//! ```text
//! palo-opt <kernel> [--size N] [--platform 5930k|6700|a15|zen2|n1|nopf]
//!          [--technique proposed|autosched|baseline|autotune|tss|tts]
//!          [--model paper|tss|tts|sim]
//!          [--prefetcher l1=SPEC,l2=SPEC,...]
//!          [--ablate no-prefetch-discount,no-corder,...]
//!          [--estimate] [--profile] [--no-nti] [--verbose] [--cache-stats]
//!          [--cache-dir DIR] [--cache-policy lru|slru|2q]
//!          [--cache-capacity ENTRIES] [--cache-capacity-bytes BYTES]
//! palo-opt --batch [kernel] [--threads N] [--estimate] [--profile] [--cache-stats]
//!          [--cache-dir DIR] [--cache-policy lru|slru|2q] [--cache-capacity N]
//! ```
//!
//! `--prefetcher` swaps individual hardware prefetch units of the chosen
//! platform before optimizing — the prefetcher zoo (DESIGN.md §16). A
//! SPEC is one of `none`, `next-line`, `adjacent-pair`,
//! `stride:DEGREE:MAXDIST`, `confident-stride:DEGREE:MAXDIST:CONF` or
//! `stream:DEGREE:MAXDIST:CONFIRM`; e.g.
//! `--prefetcher l1=adjacent-pair,l2=stream:4:16:2` optimizes for an
//! AMD-style L2 stream unit behind a buddy-line L1. The analytic model's
//! coverage discounts, Algorithm 1's row inflation and set reservations,
//! and the simulator all follow the override.
//!
//! `--cache-dir` opens the tiered persistent artifact store (DESIGN.md
//! §15): a second invocation on the same directory replays the first
//! run's pass artifacts bit-identically instead of re-optimizing.
//! `--cache-policy` and the `--cache-capacity*` flags bound the in-memory
//! tier; decisions are identical under every policy and capacity — only
//! hit rates change.
//!
//! `--profile` (implies `--estimate`) prints, per nest, the per-pass
//! wall-clock breakdown of the run plus the replay engine's run/line
//! compression and cycle-skip telemetry.
//!
//! `--batch` routes the whole suite (or one kernel) through the
//! [`palo::serve`] serving core: one warm [`Session`] (shared
//! content-addressed artifact cache), a bounded admission queue and a
//! concurrent worker pool. SIGINT/SIGTERM drain gracefully — in-flight
//! nests finish, queued ones are cancelled with a typed rejection, and
//! the partial results plus cache statistics are still printed.
//! `--cache-stats` prints the session's cache counters afterwards.

use palo::arch::{presets, Architecture};
use palo::baselines::{schedule_for, Technique};
use palo::core::{
    CacheConfig, CacheStats, ModelKind, Optimizer, OptimizerConfig, PipelineConfig,
    PipelineReport, PolicyKind, Priority, Session,
};
use palo::serve::{
    signal, Fidelity, NestResult, Request, Responder, Response, ServeConfig, Server, ShedPolicy,
};
use palo::suite::Benchmark;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::{Duration, Instant};

struct Args {
    kernel: String,
    size: Option<usize>,
    platform: String,
    prefetcher: Option<String>,
    technique: String,
    model: ModelKind,
    ablate: Vec<String>,
    estimate: bool,
    profile: bool,
    nti: bool,
    verbose: bool,
    batch: bool,
    threads: Option<usize>,
    cache_stats: bool,
    cache: CacheConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: palo-opt <kernel> [--size N] [--platform 5930k|6700|a15|zen2|n1|nopf]\n\
         \x20               [--technique proposed|autosched|baseline|autotune|tss|tts]\n\
         \x20               [--model paper|tss|tts|sim]\n\
         \x20               [--prefetcher l1=SPEC,l2=SPEC,...] (SPEC: none|next-line|adjacent-pair|\n\
         \x20                       stride:D:M|confident-stride:D:M:C|stream:D:M:C)\n\
         \x20               [--ablate no-prefetch-discount,no-corder,no-parallel-grain,no-bandwidth-term]\n\
         \x20               [--estimate] [--profile] [--no-nti] [--verbose] [--cache-stats]\n\
         \x20               [--cache-dir DIR] [--cache-policy lru|slru|2q]\n\
         \x20               [--cache-capacity ENTRIES] [--cache-capacity-bytes BYTES]\n\
         \x20      palo-opt --batch [kernel] [--threads N] [--estimate] [--profile] [--cache-stats]\n\
         \x20               [--cache-dir DIR] [--cache-policy lru|slru|2q] [--cache-capacity N]\n\
         kernels: {}",
        Benchmark::all().map(|b| b.name()).join(", ")
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let mut args = Args {
        kernel: String::new(),
        size: None,
        platform: "5930k".into(),
        prefetcher: None,
        technique: "proposed".into(),
        model: ModelKind::Paper,
        ablate: Vec::new(),
        estimate: false,
        profile: false,
        nti: true,
        verbose: false,
        batch: false,
        threads: None,
        cache_stats: false,
        cache: CacheConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                args.size = Some(it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--platform" => args.platform = it.next().ok_or_else(usage)?,
            "--prefetcher" => args.prefetcher = Some(it.next().ok_or_else(usage)?),
            "--technique" => args.technique = it.next().ok_or_else(usage)?,
            "--model" => {
                let name = it.next().ok_or_else(usage)?;
                args.model = name.parse().map_err(|e| {
                    eprintln!("{e}");
                    usage()
                })?;
            }
            "--ablate" => {
                let list = it.next().ok_or_else(usage)?;
                args.ablate.extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "--threads" => {
                args.threads = Some(it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--cache-dir" => {
                args.cache.dir = Some(std::path::PathBuf::from(it.next().ok_or_else(usage)?))
            }
            "--cache-policy" => {
                let name = it.next().ok_or_else(usage)?;
                args.cache.policy = name.parse::<PolicyKind>().map_err(|e| {
                    eprintln!("{e}");
                    usage()
                })?;
            }
            "--cache-capacity" => {
                args.cache.capacity_entries =
                    Some(it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--cache-capacity-bytes" => {
                args.cache.capacity_bytes =
                    Some(it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--estimate" => args.estimate = true,
            "--profile" => {
                args.profile = true;
                args.estimate = true; // the breakdown needs the pipeline run
            }
            "--no-nti" => args.nti = false,
            "--verbose" => args.verbose = true,
            "--batch" => args.batch = true,
            "--cache-stats" => args.cache_stats = true,
            "-h" | "--help" => return Err(usage()),
            k if !k.starts_with('-') && args.kernel.is_empty() => args.kernel = k.into(),
            _ => return Err(usage()),
        }
    }
    if args.kernel.is_empty() && !args.batch {
        return Err(usage());
    }
    Ok(args)
}

/// Maps `--ablate` switch names onto [`OptimizerConfig`] flags
/// (DESIGN.md §11's ablation table).
fn apply_ablations(config: &mut OptimizerConfig, ablate: &[String]) -> Result<(), ExitCode> {
    for a in ablate {
        match a.as_str() {
            "no-prefetch-discount" => config.prefetch_discount = false,
            "no-corder" => config.reorder_step = false,
            "no-halve-l2" => config.halve_l2_sets = false,
            "no-parallel-grain" => config.parallel_grain_constraint = false,
            "no-bandwidth-term" => config.bandwidth_term = false,
            other => {
                eprintln!("unknown ablation {other:?}");
                return Err(usage());
            }
        }
    }
    Ok(())
}

fn platform(name: &str) -> Option<Architecture> {
    match name {
        "5930k" | "5930K" => Some(presets::repro::intel_i7_5930k()),
        "6700" => Some(presets::repro::intel_i7_6700()),
        "a15" | "A15" | "arm" => Some(presets::repro::arm_cortex_a15()),
        "zen2" | "amd" => Some(presets::repro::amd_zen2()),
        "n1" | "neoverse" => Some(presets::repro::arm_neoverse_n1()),
        "nopf" | "no-prefetch" => Some(presets::repro::intel_i7_6700_no_prefetch()),
        _ => None,
    }
}

/// Applies `--prefetcher` overrides (`l1=SPEC,l2=SPEC,...`) to the
/// chosen platform. Specs use the [`palo::arch::PrefetcherConfig`]
/// grammar; levels are named `l1`, `l2`, `l3` outermost-first.
fn apply_prefetcher_overrides(arch: &mut Architecture, overrides: &str) -> Result<(), String> {
    for part in overrides.split(',') {
        let part = part.trim();
        let (level, spec) = part
            .split_once('=')
            .ok_or_else(|| format!("prefetcher override {part:?} is not LEVEL=SPEC"))?;
        let k = match level.trim().to_ascii_lowercase().as_str() {
            "l1" => 0,
            "l2" => 1,
            "l3" => 2,
            other => return Err(format!("unknown cache level {other:?} (use l1, l2 or l3)")),
        };
        if k >= arch.caches.len() {
            return Err(format!("platform {:?} has no {} cache", arch.name, level.trim()));
        }
        arch.caches[k].prefetcher = spec.trim().parse()?;
    }
    Ok(())
}

fn optimizer_config(args: &Args) -> Result<OptimizerConfig, ExitCode> {
    let mut config = OptimizerConfig {
        enable_nti: args.nti,
        model: args.model,
        ..OptimizerConfig::default()
    };
    apply_ablations(&mut config, &args.ablate)?;
    Ok(config)
}

/// `--profile`: per-pass wall-clock of one run plus the replay engine's
/// compression telemetry.
fn print_profile(report: &PipelineReport) {
    for (pass, dur, requests, cached) in report.pass_totals() {
        println!(
            "//   {:<9} {:>9.3} ms ({requests} requests, {cached} cached)",
            pass,
            dur.as_secs_f64() * 1e3
        );
    }
    if let Some(est) = &report.estimate {
        let r = &est.replay;
        let lines_per_run = if r.runs > 0 { r.run_lines as f64 / r.runs as f64 } else { 0.0 };
        println!(
            "//   replay: {} lines in {} batched events ({lines_per_run:.1} lines/event), \
             {} steady-state cycles skipped ({} lines)",
            r.run_lines, r.runs, r.cycles_skipped, r.lines_skipped
        );
    }
}

fn print_cache_stats(s: &CacheStats, cached_artifacts: usize, persistent: bool) {
    println!(
        "// cache: {} hits, {} misses, {} bypasses ({:.0}% hit rate, {} artifacts)",
        s.hits,
        s.misses,
        s.bypasses,
        s.hit_rate() * 100.0,
        cached_artifacts
    );
    println!(
        "//   mem tier:  {} hits, {} misses, {} evictions, {} bytes written",
        s.mem.hits, s.mem.misses, s.mem.evictions, s.mem.bytes_written
    );
    if persistent {
        println!(
            "//   disk tier: {} hits, {} misses, {} evictions, {} bytes written",
            s.disk.hits, s.disk.misses, s.disk.evictions, s.disk.bytes_written
        );
    }
    if s.anomalies > 0 {
        println!("//   {} corrupt entries healed (served as misses)", s.anomalies);
    }
}

/// The served-batch equivalent of [`print_profile`]: the per-pass and
/// replay telemetry carried back in the protocol's [`NestResult`].
fn print_profile_nest(n: &NestResult) {
    for p in &n.passes {
        println!(
            "//   {:<9} {:>9.3} ms ({} requests, {} cached)",
            p.pass, p.ms, p.requests, p.cached
        );
    }
    if let Some([runs, run_lines, cycles_skipped, lines_skipped]) = n.replay {
        let lines_per_run = if runs > 0 { run_lines as f64 / runs as f64 } else { 0.0 };
        println!(
            "//   replay: {run_lines} lines in {runs} batched events \
             ({lines_per_run:.1} lines/event), {cycles_skipped} steady-state cycles \
             skipped ({lines_skipped} lines)"
        );
    }
}

/// `--batch`: the suite (or one kernel) through the [`palo::serve`]
/// serving core — one warm session, admission queue, worker pool — with
/// a SIGINT/SIGTERM graceful drain: finished nests are printed, queued
/// ones are cancelled, cache statistics survive the interrupt.
fn run_batch(args: &Args, arch: &Architecture) -> ExitCode {
    let benchmarks: Vec<Benchmark> = if args.kernel.is_empty() {
        Benchmark::all().into_iter().collect()
    } else {
        match Benchmark::all().into_iter().find(|b| b.name() == args.kernel) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown kernel {:?}", args.kernel);
                return usage();
            }
        }
    };

    let config = match optimizer_config(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    signal::install_shutdown_handler();
    let serve_config = ServeConfig {
        pipeline: PipelineConfig {
            optimizer: config,
            simulate: args.estimate,
            cache: args.cache.clone(),
            ..PipelineConfig::default()
        },
        workers: args.threads,
        // A closed batch is not an overloaded service: admit everything,
        // shed nothing.
        queue_capacity: benchmarks.len().max(1),
        shed: ShedPolicy { yellow: 2.0, red: 2.0 },
    };
    let server = match Server::start(arch, serve_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open session: {e}");
            return ExitCode::FAILURE;
        }
    };

    let t0 = Instant::now();
    let (tx, rx) = mpsc::channel::<Response>();
    for b in &benchmarks {
        let request = Request {
            id: b.name().to_string(),
            kernel: b.name().to_string(),
            size: args.size,
            priority: Priority::Batch,
            deadline: None,
            max_trace_lines: None,
            fidelity: if args.estimate { Fidelity::Full } else { Fidelity::Analytic },
            faults: None,
        };
        let tx = tx.clone();
        server.submit(
            request,
            Box::new(move |r| {
                let _ = tx.send(r);
            }) as Responder,
        );
    }

    // Collect until every response arrived or a drain was requested.
    let mut responses: Vec<Response> = Vec::new();
    let interrupted = loop {
        if responses.len() == benchmarks.len() {
            break false;
        }
        if signal::shutdown_requested() {
            break true;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(r) => responses.push(r),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break false,
        }
    };
    // Graceful drain: in-flight benchmarks finish (their responses land
    // in the channel), still-queued ones come back as typed `shutdown`
    // rejections.
    let session_stats = server.session().cache_stats();
    let cached_artifacts = server.session().cached_artifacts();
    let persistent = args.cache.dir.is_some();
    let stats = server.shutdown();
    while let Ok(r) = rx.try_recv() {
        responses.push(r);
    }
    let elapsed = t0.elapsed();

    let order = |id: &str| benchmarks.iter().position(|b| b.name() == id).unwrap_or(usize::MAX);
    responses.sort_by_key(|r| order(&r.id));
    let nest_count: usize =
        responses.iter().filter_map(Response::ok).map(|ok| ok.nests.len()).sum();
    let succeeded = responses.iter().filter(|r| r.is_ok()).count();
    let cancelled = responses
        .iter()
        .filter(|r| r.error_kind() == Some(palo::serve::ErrorKind::Shutdown))
        .count();
    let failed = responses.len() - succeeded - cancelled;
    println!(
        "// batch: {} nests on {} in {:.3?} ({} ok, {} failed, {} cancelled)",
        nest_count, arch.name, elapsed, succeeded, failed, cancelled
    );
    for r in &responses {
        match &r.body {
            palo::serve::ResponseBody::Ok(ok) => {
                for n in &ok.nests {
                    let mut line = format!("// {:<12} rung {}", n.name, n.rung);
                    if let Some(class) = &n.class {
                        line.push_str(&format!(", class {class}, tile {:?}", n.tile));
                    }
                    if let Some(ms) = n.estimate_ms {
                        line.push_str(&format!(", est {ms:.3} ms"));
                    }
                    println!("{line}");
                    if args.profile {
                        print_profile_nest(n);
                    }
                }
            }
            palo::serve::ResponseBody::Err { kind, message } => {
                println!("// {:<12} {}: {message}", r.id, kind.as_str().to_uppercase());
            }
        }
    }
    if args.cache_stats {
        print_cache_stats(&session_stats, cached_artifacts, persistent);
    }
    debug_assert_eq!(stats.responses() as usize, responses.len(), "a response was lost");
    if interrupted {
        ExitCode::from(130)
    } else if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let Some(mut arch) = platform(&args.platform) else {
        eprintln!("unknown platform {:?}", args.platform);
        return usage();
    };
    if let Some(overrides) = &args.prefetcher {
        if let Err(e) = apply_prefetcher_overrides(&mut arch, overrides) {
            eprintln!("{e}");
            return usage();
        }
    }
    let arch = arch;
    if args.batch {
        return run_batch(&args, &arch);
    }
    let Some(benchmark) = Benchmark::all().into_iter().find(|b| b.name() == args.kernel) else {
        eprintln!("unknown kernel {:?}", args.kernel);
        return usage();
    };
    let nests = match args.size {
        Some(s) => benchmark.build(s),
        None => benchmark.build_scaled(),
    };
    let nests = match nests {
        Ok(n) => n,
        Err(e) => {
            eprintln!("cannot build kernel: {e}");
            return ExitCode::FAILURE;
        }
    };

    // One session for every nest and estimate of this invocation: the
    // model is resolved once and repeated work hits the artifact cache
    // (persisting across processes when --cache-dir is given).
    let pipeline = PipelineConfig { cache: args.cache.clone(), ..PipelineConfig::default() };
    let session = match Session::new(&arch, pipeline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open session: {e}");
            return ExitCode::FAILURE;
        }
    };

    for nest in &nests {
        if args.verbose {
            println!("{nest}");
        }
        let t0 = Instant::now();
        let (schedule, detail) = match args.technique.as_str() {
            "proposed" => {
                let config = match optimizer_config(&args) {
                    Ok(c) => c,
                    Err(code) => return code,
                };
                let d = match Optimizer::with_config(&arch, config).try_optimize(nest) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("optimizer failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let bd = &d.breakdown;
                let detail = format!(
                    "model {}, class {:?}, tile {:?}, predicted cost {:.3e}\n\
                     //   breakdown: cl1 {:.3e}, cl2 {:.3e}, cl2_lines {:.3e}, \
                     corder {:.3e}, pref_efficiency {:.3}",
                    args.model,
                    d.class,
                    d.tile,
                    d.predicted_cost,
                    bd.cl1,
                    bd.cl2,
                    bd.cl2_lines,
                    bd.corder,
                    bd.pref_efficiency
                );
                (d.into_schedule(), detail)
            }
            "autosched" => {
                (schedule_for(Technique::AutoScheduler, nest, &arch, 0), String::new())
            }
            "baseline" => (schedule_for(Technique::Baseline, nest, &arch, 0), String::new()),
            "autotune" => (
                schedule_for(Technique::Autotuner { budget: 20 }, nest, &arch, 0),
                String::new(),
            ),
            "tss" => (schedule_for(Technique::Tss, nest, &arch, 0), String::new()),
            "tts" => (schedule_for(Technique::Tts, nest, &arch, 0), String::new()),
            other => {
                eprintln!("unknown technique {other:?}");
                return usage();
            }
        };
        let opt_time = t0.elapsed();

        println!("// {} on {} — optimizer ran in {:.3?}", nest.name(), arch.name, opt_time);
        if !detail.is_empty() {
            println!("// {detail}");
        }
        println!("{schedule}");

        if args.estimate {
            match session.run_schedule(nest, &schedule) {
                Ok(out) => {
                    if out.report.fallback_fired() {
                        eprintln!(
                            "// schedule unusable, fell back to the {} schedule",
                            out.report.rung
                        );
                    }
                    for f in &out.report.failures {
                        eprintln!("//   {} rung: {}", f.rung, f.error);
                    }
                    match &out.report.estimate {
                        Some(est) => println!(
                            "// estimated {:.3} ms ({} lines of memory traffic, speedup {:.1}x)",
                            est.ms,
                            est.stats.mem_traffic_lines(),
                            est.speedup
                        ),
                        None => eprintln!("// no estimate: simulation failed (see above)"),
                    }
                    if args.profile {
                        print_profile(&out.report);
                    }
                }
                Err(e) => eprintln!("pipeline failed: {e}"),
            }
        }
    }
    if args.cache_stats {
        print_cache_stats(
            &session.cache_stats(),
            session.cached_artifacts(),
            args.cache.dir.is_some(),
        );
    }
    ExitCode::SUCCESS
}
