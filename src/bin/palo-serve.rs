//! `palo-serve` — the optimizer as a long-lived daemon.
//!
//! One warm [`Session`](palo::core::Session) (resolved cost model +
//! content-addressed artifact cache) behind admission control, priority
//! lanes and a load-shedding ladder. Requests are newline-delimited
//! JSON, one per line, answered one line each — over stdin/stdout by
//! default or a Unix socket with `--socket`:
//!
//! ```text
//! palo-serve [--platform 5930k|6700|a15|zen2|n1|nopf] [--socket PATH]
//!            [--workers N] [--queue N] [--max-sims N]
//!            [--yellow F] [--red F] [--no-estimate]
//!            [--cache-dir DIR] [--cache-policy lru|slru|2q]
//!            [--cache-capacity ENTRIES] [--cache-capacity-bytes BYTES]
//!
//! echo '{"id":"r1","kernel":"matmul","size":256}' | palo-serve
//! ```
//!
//! `--cache-dir` opens the tiered persistent artifact store at startup
//! (DESIGN.md §15): a restarted daemon starts warm, replaying the
//! previous process's pass artifacts bit-identically from disk.
//!
//! SIGINT/SIGTERM (and end of input) drain gracefully: in-flight
//! requests finish, queued ones are answered with a typed `shutdown`
//! rejection, and the lifetime counters go to stderr. Exactly one
//! response per request, always.

use palo::arch::{presets, Architecture};
use palo::core::{CacheConfig, PipelineConfig, PolicyKind};
use palo::serve::{signal, Responder, Response, ServeConfig, Server, ShedPolicy};
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Args {
    platform: String,
    socket: Option<String>,
    workers: Option<usize>,
    queue: usize,
    max_sims: Option<usize>,
    yellow: f64,
    red: f64,
    estimate: bool,
    cache: CacheConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: palo-serve [--platform 5930k|6700|a15|zen2|n1|nopf] [--socket PATH]\n\
         \x20                 [--workers N] [--queue N] [--max-sims N]\n\
         \x20                 [--yellow F] [--red F] [--no-estimate]\n\
         \x20                 [--cache-dir DIR] [--cache-policy lru|slru|2q]\n\
         \x20                 [--cache-capacity ENTRIES] [--cache-capacity-bytes BYTES]\n\
         protocol: one JSON request per line on stdin (or per socket\n\
         connection), one JSON response per line back; see README."
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let shed = ShedPolicy::default();
    let mut args = Args {
        platform: "5930k".into(),
        socket: None,
        workers: None,
        queue: 64,
        max_sims: None,
        yellow: shed.yellow,
        red: shed.red,
        estimate: true,
        cache: CacheConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_parsed = |name: &str| -> Result<String, ExitCode> {
            it.next().ok_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--platform" => args.platform = next_parsed("--platform")?,
            "--socket" => args.socket = Some(next_parsed("--socket")?),
            "--workers" => {
                args.workers = Some(next_parsed("--workers")?.parse().map_err(|_| usage())?)
            }
            "--queue" => args.queue = next_parsed("--queue")?.parse().map_err(|_| usage())?,
            "--max-sims" => {
                args.max_sims = Some(next_parsed("--max-sims")?.parse().map_err(|_| usage())?)
            }
            "--yellow" => {
                args.yellow = next_parsed("--yellow")?.parse().map_err(|_| usage())?
            }
            "--red" => args.red = next_parsed("--red")?.parse().map_err(|_| usage())?,
            "--no-estimate" => args.estimate = false,
            "--cache-dir" => {
                args.cache.dir = Some(std::path::PathBuf::from(next_parsed("--cache-dir")?))
            }
            "--cache-policy" => {
                args.cache.policy =
                    next_parsed("--cache-policy")?.parse::<PolicyKind>().map_err(|e| {
                        eprintln!("{e}");
                        usage()
                    })?
            }
            "--cache-capacity" => {
                args.cache.capacity_entries =
                    Some(next_parsed("--cache-capacity")?.parse().map_err(|_| usage())?)
            }
            "--cache-capacity-bytes" => {
                args.cache.capacity_bytes =
                    Some(next_parsed("--cache-capacity-bytes")?.parse().map_err(|_| usage())?)
            }
            "-h" | "--help" => return Err(usage()),
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn platform(name: &str) -> Option<Architecture> {
    match name {
        "5930k" | "5930K" => Some(presets::repro::intel_i7_5930k()),
        "6700" => Some(presets::repro::intel_i7_6700()),
        "a15" | "A15" | "arm" => Some(presets::repro::arm_cortex_a15()),
        "zen2" | "amd" => Some(presets::repro::amd_zen2()),
        "n1" | "neoverse" => Some(presets::repro::arm_neoverse_n1()),
        "nopf" | "no-prefetch" => Some(presets::repro::intel_i7_6700_no_prefetch()),
        _ => None,
    }
}

fn print_final_stats(server: &Server) {
    let cache = server.session().cache_stats();
    eprintln!(
        "// cache: {} hits, {} misses, {} bypasses ({:.0}% hit rate, {} artifacts)",
        cache.hits,
        cache.misses,
        cache.bypasses,
        cache.hit_rate() * 100.0,
        server.session().cached_artifacts()
    );
    eprintln!(
        "//   mem tier:  {} hits, {} misses, {} evictions; disk tier: {} hits, {} misses, \
         {} bytes written; {} anomalies healed",
        cache.mem.hits,
        cache.mem.misses,
        cache.mem.evictions,
        cache.disk.hits,
        cache.disk.misses,
        cache.disk.bytes_written,
        cache.anomalies,
    );
}

fn print_drain_stats(stats: &palo::serve::ServeStats) {
    eprintln!(
        "// drained: {} served ({} shed, {} retried), {} rejected full, \
         {} rejected shutdown, {} bad, {} expired, {} failed; levels g/y/r {}/{}/{}",
        stats.served,
        stats.shed,
        stats.retried,
        stats.rejected_full,
        stats.rejected_shutdown,
        stats.bad_requests,
        stats.expired,
        stats.failed,
        stats.levels[0],
        stats.levels[1],
        stats.levels[2],
    );
}

/// Responses to stdout, one line each, under a shared lock so
/// concurrent workers never interleave within a line.
fn stdout_responder() -> Responder {
    Box::new(|response: Response| {
        let out = std::io::stdout();
        let mut lock = out.lock();
        let _ = writeln!(lock, "{}", response.to_json());
        let _ = lock.flush();
    })
}

/// stdin → server. A reader thread feeds lines through a channel so the
/// main loop can poll the signal flag while the pipe is quiet.
fn serve_stdin(server: Server) -> ExitCode {
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            match line {
                Ok(l) => {
                    if tx.send(l).is_err() {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    });

    let mut seq: u64 = 0;
    let interrupted = loop {
        if signal::shutdown_requested() {
            break true;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                seq += 1;
                server.submit_line(&line, &format!("#{seq}"), stdout_responder());
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break false, // EOF
        }
    };

    // End of input finishes the work before exiting (one response per
    // submitted line); only a signal cancels what is still queued.
    while !interrupted && server.stats().responses() < seq && !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(10));
    }

    print_final_stats(&server);
    let stats = server.shutdown();
    print_drain_stats(&stats);
    if interrupted {
        ExitCode::from(130)
    } else {
        ExitCode::SUCCESS
    }
}

/// Unix-socket mode: accept loop with the listener nonblocking so the
/// signal flag is polled between accepts; one reader thread per
/// connection, responses written back to that connection.
#[cfg(unix)]
fn serve_socket(server: Server, path: &str) -> ExitCode {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("cannot poll {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("// listening on {path}");

    let server = Arc::new(server);
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !signal::shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                conns.push(std::thread::spawn(move || {
                    // A read timeout keeps the reader polling the drain
                    // flag even while the client is silent, so shutdown
                    // never hangs on an idle connection.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                    let mut reader = match stream.try_clone() {
                        Ok(r) => BufReader::new(r),
                        Err(_) => return,
                    };
                    let writer = Arc::new(Mutex::new(stream));
                    let mut seq: u64 = 0;
                    let mut buf = String::new();
                    while !signal::shutdown_requested() {
                        match reader.read_line(&mut buf) {
                            Ok(0) => break, // client closed
                            Ok(_) => {
                                let line = std::mem::take(&mut buf);
                                if line.trim().is_empty() {
                                    continue;
                                }
                                seq += 1;
                                let writer = Arc::clone(&writer);
                                let responder: Responder =
                                    Box::new(move |response: Response| {
                                        if let Ok(mut w) = writer.lock() {
                                            let _ = writeln!(w, "{}", response.to_json());
                                            let _ = w.flush();
                                        }
                                    });
                                server.submit_line(
                                    line.trim_end(),
                                    &format!("#{seq}"),
                                    responder,
                                );
                            }
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock
                                        | std::io::ErrorKind::TimedOut
                                        | std::io::ErrorKind::Interrupted
                                ) =>
                            {
                                // Partial line (if any) stays in `buf`;
                                // keep polling.
                            }
                            Err(_) => break,
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("accept failed: {e}");
                break;
            }
        }
    }

    // Drain: close the socket file first so no new connections arrive,
    // then shut the server down (in-flight finish, queued rejected).
    let _ = std::fs::remove_file(path);
    drop(listener);
    for c in conns {
        let _ = c.join();
    }
    print_final_stats(&server);
    match Arc::try_unwrap(server) {
        Ok(server) => {
            let stats = server.shutdown();
            print_drain_stats(&stats);
        }
        Err(_) => eprintln!("// connection thread leaked; skipping drain report"),
    }
    ExitCode::from(130)
}

#[cfg(not(unix))]
fn serve_socket(_server: Server, _path: &str) -> ExitCode {
    eprintln!("--socket requires a Unix platform");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let Some(arch) = platform(&args.platform) else {
        eprintln!("unknown platform {:?}", args.platform);
        return usage();
    };
    if !(args.yellow.is_finite() && args.red.is_finite() && args.yellow <= args.red) {
        eprintln!("--yellow must be <= --red");
        return usage();
    }

    signal::install_shutdown_handler();
    let config = ServeConfig {
        pipeline: PipelineConfig {
            simulate: args.estimate,
            max_concurrent_sims: args.max_sims,
            cache: args.cache.clone(),
            ..PipelineConfig::default()
        },
        workers: args.workers,
        queue_capacity: args.queue,
        shed: ShedPolicy { yellow: args.yellow, red: args.red },
    };
    let server = match Server::start(&arch, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open session: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.cache.dir {
        eprintln!("// artifact store: {} (persistent)", dir.display());
    }

    match &args.socket {
        Some(path) => serve_socket(server, path),
        None => serve_stdin(server),
    }
}
