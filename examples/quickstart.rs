//! Quickstart: describe a loop nest, let the optimizer schedule it, and
//! compare the result against the naive schedule on the simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use palo::arch::presets;
use palo::core::Optimizer;
use palo::exec::estimate_time;
use palo::ir::{DType, NestBuilder};
use palo::sched::Schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the algorithm (matrix multiplication, Listing 1 of the
    //    paper) — just the loop nest and the statement, no schedule.
    let n = 512;
    let mut b = NestBuilder::new("matmul", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    let nest = b.build()?;
    println!("Algorithm:\n{nest}");

    // 2. Pick a target platform (Table 3 presets) and optimize.
    let arch = presets::repro::intel_i7_5930k();
    let decision = Optimizer::new(&arch).optimize(&nest);
    println!("Classification: {:?}", decision.class);
    println!("Tile sizes:     {:?}", decision.tile);
    println!("Schedule:       {}", decision.schedule());

    // 3. Lower and inspect the concrete loop structure.
    let optimized = decision.schedule().lower(&nest)?;
    println!("\nLowered nest:\n{optimized}");

    // 4. Measure on the cache simulator vs. the naive program order.
    let naive = Schedule::new().lower(&nest)?;
    let t_naive = estimate_time(&nest, &naive, &arch);
    let t_opt = estimate_time(&nest, &optimized, &arch);
    println!("naive:     {:8.2} ms  ({} mem lines)", t_naive.ms, t_naive.stats.mem_traffic_lines());
    println!("optimized: {:8.2} ms  ({} mem lines)", t_opt.ms, t_opt.stats.mem_traffic_lines());
    println!("speedup:   {:.2}x", t_naive.ms / t_opt.ms);
    Ok(())
}
