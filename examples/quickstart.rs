//! Quickstart: describe a loop nest, run it through the fault-tolerant
//! pipeline, and compare the result against the naive schedule on the
//! simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use palo::arch::presets;
use palo::core::Pipeline;
use palo::ir::{DType, NestBuilder};
use palo::sched::Schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the algorithm (matrix multiplication, Listing 1 of the
    //    paper) — just the loop nest and the statement, no schedule.
    let n = 512;
    let mut b = NestBuilder::new("matmul", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    let nest = b.build()?;
    println!("Algorithm:\n{nest}");

    // 2. Pick a target platform (Table 3 presets) and run the pipeline:
    //    optimize -> lower -> validate -> simulate. If any stage of the
    //    proposed schedule fails, the pipeline degrades through stripped
    //    -> baseline -> naive instead of erroring out.
    let arch = presets::repro::intel_i7_5930k();
    let pipeline = Pipeline::new(&arch);
    let out = pipeline.run(&nest)?;
    if let Some(decision) = &out.decision {
        println!("Classification: {:?}", decision.class);
        println!("Tile sizes:     {:?}", decision.tile);
    }
    println!("Schedule ({} rung): {}", out.report.rung, out.schedule);
    if out.report.fallback_fired() {
        for f in &out.report.failures {
            println!("  degraded past {} rung: {}", f.rung, f.error);
        }
    }

    // 3. Inspect the concrete loop structure the pipeline lowered.
    println!("\nLowered nest:\n{}", out.lowered);

    // 4. Compare against the naive program order (also via the pipeline).
    let naive = pipeline.run_schedule(&nest, &Schedule::new())?;
    let (t_opt, t_naive) = match (&out.report.estimate, &naive.report.estimate) {
        (Some(o), Some(n)) => (o, n),
        _ => return Err("simulation produced no estimate".into()),
    };
    println!(
        "naive:     {:8.2} ms  ({} mem lines)",
        t_naive.ms,
        t_naive.stats.mem_traffic_lines()
    );
    println!("optimized: {:8.2} ms  ({} mem lines)", t_opt.ms, t_opt.stats.mem_traffic_lines());
    println!("speedup:   {:.2}x", t_naive.ms / t_opt.ms);
    Ok(())
}
