//! Non-temporal stores on spatial kernels: the paper's Figure 6 story on
//! one example. Shows the classifier routing `tpm` to the spatial
//! optimizer, the tall-narrow tile it picks, and the memory-traffic
//! reduction from the new `store_nt` scheduling directive.
//!
//! Run with: `cargo run --release --example transpose_nti`

use palo::arch::presets;
use palo::core::{Class, Optimizer, OptimizerConfig};
use palo::exec::estimate_time;
use palo::suite::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nest = kernels::tpm(1024)?;
    let arch = presets::repro::intel_i7_5930k();

    let with_nti = Optimizer::new(&arch).try_optimize(&nest)?;
    assert_eq!(with_nti.class, Class::Spatial);
    let without = Optimizer::with_config(
        &arch,
        OptimizerConfig { enable_nti: false, ..OptimizerConfig::default() },
    )
    .try_optimize(&nest)?;

    println!("Kernel:\n{nest}");
    println!("Spatial tile (y, x): {:?}", &with_nti.tile);
    println!("Schedule (+NTI): {}", with_nti.schedule());

    let l_nti = with_nti.schedule().lower(&nest)?;
    let l_plain = without.schedule().lower(&nest)?;
    let t_nti = estimate_time(&nest, &l_nti, &arch)?;
    let t_plain = estimate_time(&nest, &l_plain, &arch)?;

    println!("\n              est. time   mem lines   NT lines");
    println!(
        "tiled:        {:7.3} ms  {:9}   {:8}",
        t_plain.ms,
        t_plain.stats.mem_traffic_lines(),
        t_plain.stats.nt_store_lines
    );
    println!(
        "tiled + NTI:  {:7.3} ms  {:9}   {:8}",
        t_nti.ms,
        t_nti.stats.mem_traffic_lines(),
        t_nti.stats.nt_store_lines
    );
    println!("NTI speedup:  {:.2}x", t_plain.ms / t_nti.ms);

    // On ARM (no vector NT stores) the optimizer must not emit the hint.
    let arm = presets::repro::arm_cortex_a15();
    let arm_decision = Optimizer::new(&arm).try_optimize(&nest)?;
    println!("\nARM Cortex-A15 uses NTI: {}", arm_decision.use_nti);
    Ok(())
}
