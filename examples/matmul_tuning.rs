//! Compare every scheduling technique of the paper's evaluation on one
//! kernel (matrix multiplication) — a one-kernel slice of Figure 4.
//!
//! Run with: `cargo run --release --example matmul_tuning`

use palo::arch::presets;
use palo::baselines::{schedule_for, Technique};
use palo::core::Pipeline;
use palo::suite::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nest = kernels::matmul(512)?;
    let techniques = [
        Technique::Proposed,
        Technique::AutoScheduler,
        Technique::Baseline,
        Technique::Autotuner { budget: 10 },
        Technique::Tss,
        Technique::Tts,
    ];

    for arch in [presets::repro::intel_i7_5930k(), presets::repro::arm_cortex_a15()] {
        println!("\n=== {} ===", arch.name);
        let pipeline = Pipeline::new(&arch);
        let mut results = Vec::new();
        for t in techniques {
            let sched = schedule_for(t, &nest, &arch, 42);
            let out = pipeline.run_schedule(&nest, &sched)?;
            if out.report.fallback_fired() {
                println!("{:>15}: fell back to the {} schedule", t.label(), out.report.rung);
            }
            let ms = out.report.estimate.as_ref().map(|e| e.ms).unwrap_or(f64::INFINITY);
            results.push((t.label(), ms, out.schedule.to_string()));
        }
        let best = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        results.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (label, ms, sched) in &results {
            println!("{label:>15}: {ms:8.2} ms  (rel. throughput {:.2})", best / ms);
            println!("{:>15}  {sched}", "");
        }
    }
    Ok(())
}
