use palo::arch::presets;
use palo::baselines::{schedule_for, Technique};
use palo::exec::estimate_time;
use palo::suite::kernels;
fn main() {
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let Ok(nest) = kernels::syrk(size) else { return eprintln!("bad size {size}") };
    let arch = presets::repro::intel_i7_5930k();
    for t in [Technique::Proposed, Technique::Tss, Technique::Baseline] {
        let s = schedule_for(t, &nest, &arch, 0);
        let l = match s.lower(&nest) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{}: failed to lower: {e}", t.label());
                continue;
            }
        };
        let e = match estimate_time(&nest, &l, &arch) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{}: failed to simulate: {e}", t.label());
                continue;
            }
        };
        println!("{:>9}: ms {:.3} lat {:.2e} bus {:.2e} comp {:.2e} spd {:.1} | L1h {} L2h {} L3h {} memfill {} pf {} wb {}",
            t.label(), e.ms, e.memory_cycles, e.bus_cycles, e.compute_cycles, e.speedup,
            e.stats.levels[0].demand_hits, e.stats.levels[1].demand_hits, e.stats.levels[2].demand_hits,
            e.stats.mem_demand_fills, e.stats.mem_prefetch_fills, e.stats.mem_writebacks);
        let ph: u64 = e.stats.levels.iter().map(|l| l.prefetch_hits).sum();
        let pf2: u64 = e.stats.levels.iter().map(|l| l.prefetch_fills).sum();
        println!("{:>9}  prefetch hits {} fills(all levels) {}", "", ph, pf2);
        println!("{:>9}  {}", "", s);
    }
}
