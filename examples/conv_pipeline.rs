//! Optimize a small vision pipeline (convolution layer + doitgen-style
//! multiresolution stage) and *verify* each optimized schedule against
//! the reference interpretation — the workflow a compiler developer
//! would use to trust a new schedule.
//!
//! Run with: `cargo run --release --example conv_pipeline`

use palo::arch::presets;
use palo::core::{Optimizer, Pipeline};
use palo::exec::{run, run_reference, Buffers};
use palo::suite::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = presets::repro::intel_i7_6700();
    let opt = Optimizer::new(&arch);
    let pipeline = Pipeline::new(&arch);

    // Small instances so the functional check is instant; the estimate
    // afterwards uses the real scaled sizes.
    let stages = [
        (
            "convlayer",
            kernels::convlayer(8, 8, 4, 2, 4, 3)?,
            kernels::convlayer(32, 32, 16, 4, 16, 3)?,
        ),
        ("doitgen", kernels::doitgen(12)?, kernels::doitgen(64)?),
    ];

    for (name, small, full) in stages {
        let decision = opt.try_optimize(&full)?;
        println!("== {name} ==");
        println!("class {:?}, tile {:?}", decision.class, decision.tile);
        println!("schedule: {}", decision.schedule());

        // Functional verification at the small size: the same schedule
        // shape re-derived for the small instance must compute exactly
        // the reference result.
        let small_decision = opt.try_optimize(&small)?;
        let lowered = small_decision.schedule().lower(&small)?;
        let mut expect = Buffers::for_nest(&small, 2024);
        let mut got = expect.clone();
        run_reference(&small, &mut expect)?;
        run(&small, &lowered, &mut got)?;
        assert_eq!(expect, got, "{name}: optimized schedule changed the result");
        println!("functional check: OK (bit-exact vs. reference)");

        // Performance estimate at the full scaled size, through the
        // guarded pipeline (degrades instead of failing).
        let out = pipeline.run_schedule(&full, decision.schedule())?;
        if out.report.fallback_fired() {
            println!("note: fell back to the {} schedule", out.report.rung);
        }
        match &out.report.estimate {
            Some(est) => println!(
                "estimated {:.2} ms on {} ({} lines of memory traffic)\n",
                est.ms,
                arch.name,
                est.stats.mem_traffic_lines()
            ),
            None => println!("no estimate: simulation failed\n"),
        }
    }
    Ok(())
}
